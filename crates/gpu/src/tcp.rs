//! TCP transport: a [`GpuExec`] backend whose workers are remote
//! processes speaking the [`crate::wire`] protocol.
//!
//! The fleet is described by a small text manifest (one `worker
//! host:port` line per remote worker plus optional knobs) and behaves
//! exactly like the in-process backends from the session's point of
//! view: same jobs, same per-worker FIFO ordering, same typed faults.
//! A worker that drops its connection mid-batch surfaces as
//! [`GpuError::WorkerLost`]; one that exceeds the I/O deadline surfaces
//! as [`GpuError::Timeout`]; the session quarantines either and repairs
//! the batch in the TEE.
//!
//! ## Reconnect with replay
//!
//! Backward `*Stored` jobs depend on state the worker accumulated
//! during the forward pass (the stored encodings). A remote worker
//! process keeps that state per *connection*, so a reconnect would
//! silently lose it. The fleet therefore keeps a replay cache of every
//! live `Store` it issued; when a send finds the connection dead it
//! dials again, re-handshakes, and replays the cached stores before the
//! job goes out. Encodings themselves are derived deterministically
//! from the session seed (PR 4), so the replayed bytes are identical to
//! the originals — the rejoining worker cannot tell it ever died.

use crate::error::GpuError;
use crate::exec::{GpuExec, WorkerResult};
use crate::job::LinearJob;
use crate::wire::{self, WireMsg};
use crate::worker::{GpuWorker, WorkerId};
use crate::{Behavior, LatencyModel};
use dk_field::F25;
use dk_linalg::Tensor;
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Text description of a remote worker fleet.
///
/// ```text
/// # two worker processes, two workers each
/// worker 127.0.0.1:7501
/// worker 127.0.0.1:7501
/// worker 127.0.0.1:7502
/// worker 127.0.0.1:7502
/// seed 42
/// latency 50000 25
/// io_timeout_ms 2000
/// connect_timeout_ms 1000
/// redial_backoff_ms 10
/// redial_backoff_max_ms 2000
/// ```
///
/// Repeating an address is how one process hosts several logical
/// workers: each `worker` line becomes its own connection (and its own
/// server-side [`GpuWorker`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetManifest {
    /// One `host:port` per logical worker, in worker-id order.
    pub workers: Vec<String>,
    /// Seed forwarded to remote workers in the `Hello` handshake.
    pub seed: u64,
    /// Modeled latency `(base_ns, ns_per_kmac)` applied by every remote
    /// worker; `None` for no modeled delay.
    pub latency: Option<(u64, u64)>,
    /// Per-reply read deadline; a straggler past this is a
    /// [`GpuError::Timeout`]. `0` disables the deadline.
    pub io_timeout_ms: u64,
    /// Dial deadline for (re)connects.
    pub connect_timeout_ms: u64,
    /// First redial-backoff window after a failed dial; each further
    /// consecutive failure doubles it (plus derived jitter). `0`
    /// disables backoff and retries every dial immediately.
    pub redial_backoff_ms: u64,
    /// Ceiling on the redial-backoff window.
    pub redial_backoff_max_ms: u64,
}

impl Default for FleetManifest {
    fn default() -> Self {
        Self {
            workers: Vec::new(),
            seed: 0x5EED,
            latency: None,
            io_timeout_ms: 5_000,
            connect_timeout_ms: 1_000,
            redial_backoff_ms: 10,
            redial_backoff_max_ms: 2_000,
        }
    }
}

impl FleetManifest {
    /// Parses the manifest text format (see the type docs).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut m = FleetManifest::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let key = tok.next().unwrap_or("");
            let mut arg = |name: &str| {
                tok.next()
                    .ok_or_else(|| format!("line {}: {key} missing {name}", lineno + 1))
            };
            let parse_u64 = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|_| format!("line {}: bad {what} `{s}`", lineno + 1))
            };
            match key {
                "worker" => m.workers.push(arg("address")?.to_string()),
                "seed" => m.seed = parse_u64(arg("value")?, "seed")?,
                "latency" => {
                    let base = parse_u64(arg("base_ns")?, "base_ns")?;
                    let per = parse_u64(arg("ns_per_kmac")?, "ns_per_kmac")?;
                    m.latency = Some((base, per));
                }
                "io_timeout_ms" => m.io_timeout_ms = parse_u64(arg("value")?, "timeout")?,
                "connect_timeout_ms" => {
                    m.connect_timeout_ms = parse_u64(arg("value")?, "timeout")?;
                }
                "redial_backoff_ms" => {
                    m.redial_backoff_ms = parse_u64(arg("value")?, "backoff")?;
                }
                "redial_backoff_max_ms" => {
                    m.redial_backoff_max_ms = parse_u64(arg("value")?, "backoff")?;
                }
                other => return Err(format!("line {}: unknown directive `{other}`", lineno + 1)),
            }
            if let Some(extra) = tok.next() {
                return Err(format!("line {}: trailing token `{extra}`", lineno + 1));
            }
        }
        if m.workers.is_empty() {
            return Err("manifest declares no workers".to_string());
        }
        Ok(m)
    }
}

/// SplitMix64 — the jitter hash. Deterministic, so two fleets built
/// from the same manifest back off on the same schedule (no wall-clock
/// randomness anywhere in the transport).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The redial-backoff window for one failure streak: `base * 2^(n-1)`
/// capped at `max`, plus jitter derived from `(seed, worker, n)` —
/// up to half the window, so workers sharing a manifest seed still
/// desynchronize their dial storms.
fn backoff_window(base: Duration, max: Duration, seed: u64, worker: u64, failures: u32) -> Duration {
    let exp = failures.saturating_sub(1).min(16);
    let delay = base.saturating_mul(1 << exp).min(max);
    let jitter_ms = if delay.as_millis() > 1 {
        splitmix64(seed ^ worker.rotate_left(17) ^ u64::from(failures))
            % (delay.as_millis() as u64 / 2 + 1)
    } else {
        0
    };
    (delay + Duration::from_millis(jitter_ms)).min(max)
}

/// Dial-suppression state for one remote worker: consecutive dial
/// failures widen an exponential window during which further dial
/// attempts fail immediately (without touching the network), so a dead
/// worker costs the dispatcher one cheap error instead of a
/// `connect_timeout` stall per job.
struct Backoff {
    /// First window; `ZERO` disables suppression entirely.
    base: Duration,
    /// Window ceiling.
    max: Duration,
    /// Consecutive failed dials (reset by any successful handshake).
    failures: u32,
    /// Dials before this instant are suppressed.
    until: Option<Instant>,
    /// `dk_fleet_redial_backoff`: windows armed, fleet-wide.
    armed_total: dk_obs::Counter,
}

impl Backoff {
    /// Time left in the current suppression window, if any.
    fn suppressed_for(&self, now: Instant) -> Option<Duration> {
        let until = self.until?;
        (now < until).then(|| until - now)
    }

    /// Records a failed dial and arms (or widens) the window.
    fn arm(&mut self, seed: u64, worker: u64, now: Instant) {
        self.failures = self.failures.saturating_add(1);
        if self.base.is_zero() {
            return;
        }
        let window = backoff_window(self.base, self.max, seed, worker, self.failures);
        self.until = Some(now + window);
        self.armed_total.inc();
    }

    /// A successful handshake clears the streak and the window.
    fn reset(&mut self) {
        self.failures = 0;
        self.until = None;
    }
}

/// TEE-side handle to one remote worker: its dial target, the live
/// connection (if any), and the replay cache of stored encodings.
struct RemoteWorker {
    id: WorkerId,
    addr: String,
    seed: u64,
    latency: (u64, u64),
    io_timeout: Option<Duration>,
    connect_timeout: Duration,
    conn: Option<TcpStream>,
    /// Live `Store`s in issue order, replayed on reconnect.
    replay: Vec<(u64, Tensor<F25>)>,
    reconnects: u64,
    backoff: Backoff,
    /// Per-worker health accounting (frames, bytes, redials).
    health: dk_obs::WorkerHandle,
    frames_total: dk_obs::Counter,
    bytes_total: dk_obs::Counter,
    redials_total: dk_obs::Counter,
}

impl std::fmt::Debug for RemoteWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteWorker")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .field("reconnects", &self.reconnects)
            .finish()
    }
}

impl RemoteWorker {
    /// One wire frame of `n` bytes moved on this worker's connection.
    fn count_frame(&self, n: usize) {
        self.health.framed(n as u64);
        self.frames_total.inc();
        self.bytes_total.add(n as u64);
    }

    fn lost(&self, e: &io::Error) -> GpuError {
        if e.kind() == io::ErrorKind::InvalidData {
            GpuError::Protocol { detail: format!("{}: {e}", self.id) }
        } else {
            GpuError::lost(self.id, e.to_string())
        }
    }

    /// Dials, handshakes, and replays the store cache — unless the
    /// worker's failure streak has it inside a backoff window, in which
    /// case the dial is suppressed without touching the network. On
    /// success the connection is installed and the streak resets; any
    /// failure leaves `conn` empty and widens the window.
    fn reconnect(&mut self) -> Result<(), GpuError> {
        let now = Instant::now();
        if let Some(remaining) = self.backoff.suppressed_for(now) {
            return Err(GpuError::lost(
                self.id,
                format!(
                    "redial suppressed for {}ms (backoff after {} consecutive dial failures)",
                    remaining.as_millis(),
                    self.backoff.failures
                ),
            ));
        }
        match self.dial_and_replay() {
            Ok(()) => {
                self.backoff.reset();
                if self.reconnects > 0 {
                    // The first successful dial is just "connecting";
                    // every later one is a redial after a loss.
                    self.health.reconnected();
                    self.redials_total.inc();
                }
                self.reconnects += 1;
                Ok(())
            }
            Err(e) => {
                self.backoff.arm(self.seed, self.id.0 as u64, now);
                Err(e)
            }
        }
    }

    /// The raw dial + handshake + store-replay sequence.
    fn dial_and_replay(&mut self) -> Result<(), GpuError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| self.lost(&e))?
            .next()
            .ok_or_else(|| GpuError::lost(self.id, format!("{} resolves to nothing", self.addr)))?;
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
            .map_err(|e| self.lost(&e))?;
        stream.set_nodelay(true).map_err(|e| self.lost(&e))?;
        stream.set_read_timeout(self.io_timeout).map_err(|e| self.lost(&e))?;
        let mut stream = stream;
        let hello_bytes = wire::write_msg_counted(
            &mut stream,
            &WireMsg::Hello { worker_id: self.id.0 as u64, seed: self.seed, latency: self.latency },
        )
        .map_err(|e| self.lost(&e))?;
        self.count_frame(hello_bytes);
        match wire::read_msg(&mut stream).map_err(|e| self.lost(&e))? {
            WireMsg::HelloAck => {}
            other => {
                return Err(GpuError::Protocol {
                    detail: format!("{}: expected HelloAck, got {other:?}", self.id),
                })
            }
        }
        // Reconstruct the worker's forward state: replay every live
        // stored encoding in original issue order.
        for (ctx_id, tensor) in &self.replay {
            let n = wire::write_msg_counted(
                &mut stream,
                &WireMsg::Store { ctx_id: *ctx_id, tensor: tensor.clone() },
            )
            .map_err(|e| self.lost(&e))?;
            self.count_frame(n);
        }
        self.conn = Some(stream);
        Ok(())
    }

    /// Sends one message, dialing (with replay) if there is no live
    /// connection, and redialing once if a stale connection fails
    /// mid-write.
    fn send(&mut self, msg: &WireMsg) -> Result<(), GpuError> {
        let had_conn = self.conn.is_some();
        if !had_conn {
            self.reconnect()?;
        }
        let stream = self.conn.as_mut().expect("reconnect installed a stream");
        match wire::write_msg_counted(stream, msg) {
            Ok(n) => {
                self.count_frame(n);
                Ok(())
            }
            Err(_) if had_conn => {
                // The cached connection died since we last used it;
                // one fresh dial gets its own chance.
                self.conn = None;
                self.reconnect()?;
                let stream = self.conn.as_mut().expect("reconnect installed a stream");
                match wire::write_msg_counted(stream, msg) {
                    Ok(n) => {
                        self.count_frame(n);
                        Ok(())
                    }
                    Err(e) => {
                        self.conn = None;
                        Err(self.lost(&e))
                    }
                }
            }
            Err(e) => {
                self.conn = None;
                Err(self.lost(&e))
            }
        }
    }

    /// Reads one reply frame; faults tear the connection down so the
    /// next send starts from a clean dial.
    fn recv(&mut self) -> Result<WireMsg, GpuError> {
        let Some(stream) = self.conn.as_mut() else {
            return Err(GpuError::lost(self.id, "no connection"));
        };
        match wire::read_msg_counted(stream) {
            Ok((msg, n)) => {
                self.count_frame(n);
                Ok(msg)
            }
            Err(e) => {
                self.conn = None;
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                    Err(GpuError::Timeout {
                        worker: self.id,
                        waited_ms: self.io_timeout.map_or(0, |t| t.as_millis() as u64),
                    })
                } else {
                    Err(self.lost(&e))
                }
            }
        }
    }

    /// Sends a Run and reads its Output/Fail reply.
    fn run_reply(&mut self) -> WorkerResult {
        match self.recv()? {
            WireMsg::Output { tensor } => Ok(tensor),
            WireMsg::Fail { message } => Err(GpuError::Remote { worker: self.id, message }),
            other => {
                self.conn = None;
                Err(GpuError::Protocol {
                    detail: format!("{}: expected Output/Fail, got {other:?}", self.id),
                })
            }
        }
    }
}

/// A [`GpuExec`] backend over remote worker processes (see module
/// docs). Build from a [`FleetManifest`]; connections are dialed
/// lazily, on first use, and redialed transparently (with store
/// replay) after a loss.
#[derive(Debug)]
pub struct TcpFleet {
    workers: Vec<RemoteWorker>,
}

impl TcpFleet {
    /// Builds the fleet handle. No connections are made yet.
    pub fn from_manifest(m: &FleetManifest) -> Self {
        let io_timeout = (m.io_timeout_ms > 0).then(|| Duration::from_millis(m.io_timeout_ms));
        let reg = dk_obs::global();
        let frames_total = reg.counter("dk_tcp_frames_total");
        let bytes_total = reg.counter("dk_tcp_bytes_total");
        let redials_total = reg.counter("dk_tcp_redials_total");
        let backoff_total = reg.counter("dk_fleet_redial_backoff");
        let workers = m
            .workers
            .iter()
            .enumerate()
            .map(|(i, addr)| RemoteWorker {
                id: WorkerId(i),
                addr: addr.clone(),
                seed: m.seed,
                latency: m.latency.unwrap_or((0, 0)),
                io_timeout,
                connect_timeout: Duration::from_millis(m.connect_timeout_ms.max(1)),
                conn: None,
                replay: Vec::new(),
                reconnects: 0,
                backoff: Backoff {
                    base: Duration::from_millis(m.redial_backoff_ms),
                    max: Duration::from_millis(m.redial_backoff_max_ms.max(m.redial_backoff_ms)),
                    failures: 0,
                    until: None,
                    armed_total: backoff_total.clone(),
                },
                health: dk_obs::fleet().worker(i),
                frames_total: frames_total.clone(),
                bytes_total: bytes_total.clone(),
                redials_total: redials_total.clone(),
            })
            .collect();
        Self { workers }
    }

    /// Total reconnect count across the fleet (each successful dial
    /// after the first one per worker counts once).
    pub fn reconnects(&self) -> u64 {
        self.workers.iter().map(|w| w.reconnects.saturating_sub(1)).sum()
    }

    /// Drops one worker's live connection without telling the remote
    /// side — fault injection for reconnect tests (the next use redials
    /// and replays).
    pub fn sever_connection(&mut self, id: WorkerId) {
        self.workers[id.0].conn = None;
    }

    /// Best-effort `Shutdown` to every worker process (idempotent; a
    /// process hosting several workers exits on the first one).
    pub fn shutdown(&mut self) {
        for w in &mut self.workers {
            let _ = w.send(&WireMsg::Shutdown);
            w.conn = None;
        }
    }
}

impl GpuExec for TcpFleet {
    fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn execute(&mut self, _tag: u64, jobs: &[LinearJob]) -> Result<Vec<WorkerResult>, GpuError> {
        if jobs.len() > self.workers.len() {
            return Err(GpuError::Oversubscribed { jobs: jobs.len(), workers: self.workers.len() });
        }
        // Phase 1: pipeline the sends — every worker starts computing
        // before we block on any reply.
        let sent: Vec<Result<(), GpuError>> = self
            .workers
            .iter_mut()
            .zip(jobs)
            .map(|(w, job)| w.send(&WireMsg::Run { job: job.clone() }))
            .collect();
        // Phase 2: collect replies in worker order.
        Ok(self
            .workers
            .iter_mut()
            .zip(sent)
            .map(|(w, s)| s.and_then(|()| w.run_reply()))
            .collect())
    }

    fn execute_on(&mut self, id: WorkerId, job: &LinearJob) -> WorkerResult {
        let w = &mut self.workers[id.0];
        w.send(&WireMsg::Run { job: job.clone() })?;
        w.run_reply()
    }

    fn store_encodings(&mut self, ctx_id: u64, encodings: Vec<Tensor<F25>>) {
        assert!(encodings.len() <= self.workers.len(), "more encodings than workers");
        for (w, enc) in self.workers.iter_mut().zip(encodings) {
            w.replay.push((ctx_id, enc.clone()));
            // Best-effort: an unreachable worker gets the encoding via
            // replay when (if) it comes back.
            let _ = w.send(&WireMsg::Store { ctx_id, tensor: enc });
        }
    }

    fn release_contexts(&mut self, ctx_ids: &[u64]) {
        for w in &mut self.workers {
            w.replay.retain(|(c, _)| !ctx_ids.contains(c));
            for &c in ctx_ids {
                let _ = w.send(&WireMsg::Release { ctx_id: c });
            }
        }
    }
}

/// What one served connection did before it ended — the raw material
/// for the `dk_gpu_worker` binary's structured stderr log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnSummary {
    /// Peer address as reported by the socket (may be unknown).
    pub peer: String,
    /// Logical worker id from the `Hello`, if the handshake completed.
    pub worker: Option<u64>,
    /// Wire frames moved (read + written) on this connection.
    pub frames: u64,
    /// `Run` jobs executed.
    pub jobs: u64,
    /// Why the connection ended: `shutdown`, `peer-closed`,
    /// `write-failed`, `bad-hello`, or `protocol`.
    pub exit: &'static str,
}

impl ConnSummary {
    /// Did the peer ask the whole process to shut down?
    pub fn is_shutdown(&self) -> bool {
        self.exit == "shutdown"
    }
}

/// Serves worker connections on `listener` until some connection
/// receives `Shutdown`. Each accepted connection hosts one logical
/// [`GpuWorker`] (identity from its `Hello`); connections are served
/// concurrently, one thread each. This is the loop behind the
/// `dk_gpu_worker` binary; tests run it on an ephemeral port.
///
/// # Errors
///
/// Propagates accept errors from the listener.
pub fn serve_fleet_worker(listener: TcpListener) -> io::Result<()> {
    serve_fleet_worker_impl(listener, false)
}

/// Like [`serve_fleet_worker`], but logs one structured `key=value`
/// line to stderr per connection event (accepted / closed, with worker
/// id, peer address, connection ordinal per worker — redials — frames
/// and jobs served, and the exit reason). Used by the `dk_gpu_worker`
/// binary so multi-process fleet runs are debuggable.
///
/// # Errors
///
/// Propagates accept errors from the listener.
pub fn serve_fleet_worker_verbose(listener: TcpListener) -> io::Result<()> {
    serve_fleet_worker_impl(listener, true)
}

fn serve_fleet_worker_impl(listener: TcpListener, verbose: bool) -> io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let local = listener.local_addr()?;
    // worker id → connections accepted so far (conn ordinal > 1 means
    // the TEE redialed us after a connection loss).
    let conn_counts: Arc<std::sync::Mutex<std::collections::HashMap<u64, u64>>> =
        Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = conn?;
        let stop = Arc::clone(&stop);
        let conn_counts = Arc::clone(&conn_counts);
        std::thread::spawn(move || {
            let summary = serve_connection(stream);
            if verbose && !(summary.worker.is_none() && summary.frames <= 1) {
                // Skip the wake-up probe connections the shutdown path
                // makes; log everything that spoke the protocol.
                let conn_ordinal = summary.worker.map(|w| {
                    let mut counts = conn_counts.lock().unwrap_or_else(|e| e.into_inner());
                    let c = counts.entry(w).or_insert(0);
                    *c += 1;
                    *c
                });
                eprintln!(
                    "[dk_gpu_worker] listen={local} event=conn_closed worker={} peer={} conn={} redials={} frames={} jobs={} exit={}",
                    summary.worker.map_or_else(|| "-".to_string(), |w| w.to_string()),
                    summary.peer,
                    conn_ordinal.unwrap_or(0),
                    conn_ordinal.map_or(0, |c| c.saturating_sub(1)),
                    summary.frames,
                    summary.jobs,
                    summary.exit
                );
            }
            if summary.is_shutdown() {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it can observe the flag.
                let _ = TcpStream::connect(local);
            }
        });
    }
    Ok(())
}

/// Serves one worker connection to completion.
fn serve_connection(mut stream: TcpStream) -> ConnSummary {
    let peer = stream.peer_addr().map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    let mut summary = ConnSummary { peer, worker: None, frames: 0, jobs: 0, exit: "peer-closed" };
    let _ = stream.set_nodelay(true);
    let hello = match wire::read_msg_counted(&mut stream) {
        Ok((m, _)) => {
            summary.frames += 1;
            m
        }
        Err(_) => return summary,
    };
    let WireMsg::Hello { worker_id, seed, latency } = hello else {
        // A wake-up probe from the shutdown path lands here (no Hello);
        // also covers confused peers.
        summary.exit = if matches!(hello, WireMsg::Shutdown) { "shutdown" } else { "bad-hello" };
        return summary;
    };
    summary.worker = Some(worker_id);
    let mut worker = GpuWorker::new(WorkerId(worker_id as usize), Behavior::Honest, seed);
    if latency != (0, 0) {
        worker.set_latency(Some(LatencyModel { base_ns: latency.0, ns_per_kmac: latency.1 }));
    }
    if wire::write_msg(&mut stream, &WireMsg::HelloAck).is_err() {
        summary.exit = "write-failed";
        return summary;
    }
    summary.frames += 1;
    loop {
        match wire::read_msg(&mut stream) {
            Ok(WireMsg::Run { job }) => {
                summary.frames += 1;
                summary.jobs += 1;
                // Pre-check instead of letting `execute` panic: a replay
                // gap becomes a typed wire fault the TEE can attribute.
                let reply = if worker.can_execute(&job) {
                    WireMsg::Output { tensor: worker.execute(&job) }
                } else {
                    WireMsg::Fail {
                        message: format!("{} holds no stored encoding for this job", worker.id()),
                    }
                };
                if wire::write_msg(&mut stream, &reply).is_err() {
                    summary.exit = "write-failed";
                    return summary;
                }
                summary.frames += 1;
            }
            Ok(WireMsg::Store { ctx_id, tensor }) => {
                summary.frames += 1;
                worker.store_encoding(ctx_id, tensor);
            }
            Ok(WireMsg::Release { ctx_id }) => {
                summary.frames += 1;
                worker.remove_encoding(ctx_id);
            }
            Ok(WireMsg::Shutdown) => {
                summary.frames += 1;
                summary.exit = "shutdown";
                return summary;
            }
            Ok(other) => {
                summary.frames += 1;
                let _ = wire::write_msg(
                    &mut stream,
                    &WireMsg::Fail { message: format!("unexpected message {other:?}") },
                );
                summary.exit = "protocol";
                return summary;
            }
            Err(_) => return summary, // peer went away; this worker's state dies with it
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parses_every_directive() {
        let m = FleetManifest::parse(
            "# fleet\nworker 127.0.0.1:7501   # first\nworker 127.0.0.1:7502\nseed 42\nlatency 50000 25\nio_timeout_ms 2000\nconnect_timeout_ms 77\nredial_backoff_ms 5\nredial_backoff_max_ms 500\n",
        )
        .unwrap();
        assert_eq!(m.workers, vec!["127.0.0.1:7501", "127.0.0.1:7502"]);
        assert_eq!(m.seed, 42);
        assert_eq!(m.latency, Some((50_000, 25)));
        assert_eq!(m.io_timeout_ms, 2_000);
        assert_eq!(m.connect_timeout_ms, 77);
        assert_eq!(m.redial_backoff_ms, 5);
        assert_eq!(m.redial_backoff_max_ms, 500);
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(FleetManifest::parse("").is_err()); // no workers
        assert!(FleetManifest::parse("worker\n").is_err()); // missing addr
        assert!(FleetManifest::parse("worker a:1\nseed banana\n").is_err());
        assert!(FleetManifest::parse("worker a:1\nwat 3\n").is_err());
        assert!(FleetManifest::parse("worker a:1 extra\n").is_err());
    }

    #[test]
    fn unreachable_fleet_reports_loss_not_panic() {
        // Port 1 on localhost refuses connections.
        let m = FleetManifest {
            workers: vec!["127.0.0.1:1".into()],
            connect_timeout_ms: 200,
            ..FleetManifest::default()
        };
        let mut fleet = TcpFleet::from_manifest(&m);
        let job = LinearJob::DenseForward {
            weights: std::sync::Arc::new(Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1))),
            x: Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1)),
        };
        let results = crate::GpuExec::execute(&mut fleet, 0, std::slice::from_ref(&job)).unwrap();
        assert!(matches!(&results[0], Err(GpuError::WorkerLost { worker: WorkerId(0), .. })));
    }

    #[test]
    fn backoff_window_is_derived_bounded_and_monotone() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(500);
        // Derived, not wall-clock-random: same inputs, same window.
        let a = backoff_window(base, max, 42, 3, 4);
        let b = backoff_window(base, max, 42, 3, 4);
        assert_eq!(a, b);
        // Different workers jitter apart somewhere along the streak
        // (individual collisions are possible; identical schedules are
        // not).
        assert!(
            (1..10).any(|f| backoff_window(base, max, 42, 0, f)
                != backoff_window(base, max, 42, 1, f)),
            "workers 0 and 1 share an entire backoff schedule"
        );
        for failures in 1..40 {
            let w = backoff_window(base, max, 42, 0, failures);
            assert!(w >= base, "window below base at streak {failures}");
            assert!(w <= max, "window above cap at streak {failures}");
        }
        // The exponential part actually grows before the cap bites.
        assert!(backoff_window(base, max, 42, 0, 5) > backoff_window(base, max, 42, 0, 1));
        // Huge streaks cannot overflow the shift.
        assert_eq!(backoff_window(base, max, 42, 0, u32::MAX), max);
    }

    #[test]
    fn dead_worker_backs_off_instead_of_spinning() {
        dk_obs::enable(); // counters are no-ops while disabled
        let m = FleetManifest {
            workers: vec!["127.0.0.1:1".into()],
            connect_timeout_ms: 200,
            redial_backoff_ms: 10_000, // one failure arms a long window
            redial_backoff_max_ms: 60_000,
            ..FleetManifest::default()
        };
        let mut fleet = TcpFleet::from_manifest(&m);
        let armed_before = dk_obs::global().counter("dk_fleet_redial_backoff").value();
        let job = LinearJob::DenseForward {
            weights: std::sync::Arc::new(Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1))),
            x: Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1)),
        };
        // First use really dials (and fails).
        let err = crate::GpuExec::execute_on(&mut fleet, WorkerId(0), &job).unwrap_err();
        assert!(matches!(err, GpuError::WorkerLost { worker: WorkerId(0), .. }));
        assert_eq!(
            dk_obs::global().counter("dk_fleet_redial_backoff").value(),
            armed_before + 1,
            "the failed dial arms one backoff window"
        );
        // Inside the window the dial is suppressed: still a typed loss,
        // but instant — no connect_timeout stall, no network traffic.
        let start = Instant::now();
        let err = crate::GpuExec::execute_on(&mut fleet, WorkerId(0), &job).unwrap_err();
        assert!(start.elapsed() < Duration::from_millis(150), "suppressed dial must be instant");
        match err {
            GpuError::WorkerLost { worker, detail } => {
                assert_eq!(worker, WorkerId(0));
                assert!(detail.contains("suppressed"), "got: {detail}");
            }
            other => panic!("expected WorkerLost, got {other:?}"),
        }
        assert_eq!(
            dk_obs::global().counter("dk_fleet_redial_backoff").value(),
            armed_before + 1,
            "a suppressed dial is not a new failure"
        );
    }

    #[test]
    fn successful_dial_resets_the_failure_streak() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_fleet_worker(listener));
        let m = FleetManifest {
            workers: vec![addr.to_string()],
            redial_backoff_ms: 10_000,
            redial_backoff_max_ms: 60_000,
            ..FleetManifest::default()
        };
        let mut fleet = TcpFleet::from_manifest(&m);
        // Fake a prior failure streak, as if the worker had been down.
        fleet.workers[0].backoff.failures = 7;
        let job = LinearJob::DenseForward {
            weights: std::sync::Arc::new(Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1))),
            x: Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1)),
        };
        crate::GpuExec::execute_on(&mut fleet, WorkerId(0), &job).unwrap();
        assert_eq!(fleet.workers[0].backoff.failures, 0, "success clears the streak");
        assert!(fleet.workers[0].backoff.until.is_none());
        fleet.shutdown();
        server.join().unwrap().unwrap();
    }
}
