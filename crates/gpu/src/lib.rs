//! Simulated untrusted GPU accelerators for DarKnight.
//!
//! Real GPUs in the paper's deployment only ever see (a) the public
//! quantized model weights, (b) masked field-domain activations
//! `x̄ = XA + RA'`, (c) the public backward matrix `B`, and quantized
//! gradients `δ` — and they only ever run *bilinear* operations on them.
//! This crate reproduces exactly that interface:
//!
//! * [`job::LinearJob`] — the five bilinear operations DarKnight
//!   offloads (conv forward / input-grad / weight-grad, dense forward /
//!   weight-grad), all over `F_{2^25−39}`.
//! * [`worker::GpuWorker`] — executes jobs, stores forward encodings for
//!   backward reuse (§6, "Encoded Data Storage During Forward Pass"),
//!   records everything it observes (for collusion analysis), and can be
//!   configured with adversarial [`behavior::Behavior`]s that corrupt
//!   results — the faults DarKnight's integrity check (§4.4) must catch.
//! * [`dispatch::GpuDispatcher`] — the **primary** execution interface:
//!   asynchronous `submit(batch_tag, jobs) → Ticket` /
//!   `complete(Ticket)` dispatch over persistent per-worker OS threads
//!   with bounded queues, so TEE encode/decode work overlaps accelerator
//!   execution (§7.1's pipelined mode).
//! * [`cluster::GpuCluster`] — the fleet container; also offers the
//!   legacy blocking `execute` used by the sequential reference path.
//! * [`exec::GpuExec`] — the backend abstraction the `dk-core` session
//!   is generic over: the same TEE-side protocol code drives either a
//!   blocking cluster or a shared dispatcher.
//! * [`collusion`] — the empirical privacy harness: uniformity testing
//!   of observations and a white-box noise-cancellation audit that
//!   demonstrates the exact collusion-tolerance boundary `M`.
//! * [`error::GpuError`] — the typed fault vocabulary: worker loss,
//!   timeouts, oversubscription, remote refusals, protocol violations.
//!   Every backend reports faults as values; none of them panic the
//!   process over a dead worker.
//! * [`wire`] / [`tcp`] — the framed wire protocol and the TCP
//!   transport ([`tcp::TcpFleet`]) that lets remote worker processes
//!   (the `dk_gpu_worker` binary) join the fleet from a
//!   [`tcp::FleetManifest`], with reconnect-and-replay of stored
//!   encodings after a connection loss.

pub mod behavior;
pub mod cluster;
pub mod collusion;
pub mod dispatch;
pub mod error;
pub mod exec;
pub mod job;
pub mod tcp;
pub mod wire;
pub mod worker;

pub use behavior::Behavior;
pub use cluster::GpuCluster;
pub use dispatch::{BatchTag, DispatchClient, GpuDispatcher, JobTicket, Ticket};
pub use error::GpuError;
pub use exec::{GpuExec, WorkerResult};
pub use job::{JobOutput, LinearJob};
pub use tcp::{serve_fleet_worker, serve_fleet_worker_verbose, ConnSummary, FleetManifest, TcpFleet};
pub use worker::{GpuWorker, WorkerId};

/// A modeled accelerator execution-latency profile.
///
/// The workers in this crate *simulate* GPUs on the host CPU, so by
/// default a job takes however long the host needs to run the field
/// kernels — which says nothing about real accelerator timing. Attaching
/// a `LatencyModel` makes every job additionally occupy the worker for
/// `base_ns + macs·ns_per_kmac/1000` of wall-clock time (a fixed
/// dispatch/transfer overhead plus a throughput term), without consuming
/// host CPU. Pipeline experiments use this to measure *overlap*: TEE
/// encode/decode compute can genuinely hide under the modeled device
/// time, exactly as §7.1 hides it under real GPU execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-job overhead (kernel launch + PCIe transfer), in ns.
    pub base_ns: u64,
    /// Throughput term: nanoseconds per thousand MACs.
    pub ns_per_kmac: u64,
}

impl LatencyModel {
    /// The modeled wall-clock occupancy of a job with `macs` MACs.
    pub fn delay(&self, macs: u64) -> std::time::Duration {
        std::time::Duration::from_nanos(self.base_ns + macs.saturating_mul(self.ns_per_kmac) / 1000)
    }
}
