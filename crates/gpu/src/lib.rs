//! Simulated untrusted GPU accelerators for DarKnight.
//!
//! Real GPUs in the paper's deployment only ever see (a) the public
//! quantized model weights, (b) masked field-domain activations
//! `x̄ = XA + RA'`, (c) the public backward matrix `B`, and quantized
//! gradients `δ` — and they only ever run *bilinear* operations on them.
//! This crate reproduces exactly that interface:
//!
//! * [`job::LinearJob`] — the five bilinear operations DarKnight
//!   offloads (conv forward / input-grad / weight-grad, dense forward /
//!   weight-grad), all over `F_{2^25−39}`.
//! * [`worker::GpuWorker`] — executes jobs, stores forward encodings for
//!   backward reuse (§6, "Encoded Data Storage During Forward Pass"),
//!   records everything it observes (for collusion analysis), and can be
//!   configured with adversarial [`behavior::Behavior`]s that corrupt
//!   results — the faults DarKnight's integrity check (§4.4) must catch.
//! * [`cluster::GpuCluster`] — dispatches one encoding per worker
//!   (the paper's "each GPU receives at most one encoded data") either
//!   sequentially or across OS threads.
//! * [`collusion`] — the empirical privacy harness: uniformity testing
//!   of observations and a white-box noise-cancellation audit that
//!   demonstrates the exact collusion-tolerance boundary `M`.

pub mod behavior;
pub mod cluster;
pub mod collusion;
pub mod job;
pub mod worker;

pub use behavior::Behavior;
pub use cluster::GpuCluster;
pub use job::{JobOutput, LinearJob};
pub use worker::{GpuWorker, WorkerId};
