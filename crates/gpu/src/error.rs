//! Typed accelerator faults.
//!
//! The original dispatch layer treated a dead worker thread as a bug in
//! the simulation and panicked. A wire-protocol fleet cannot: worker
//! processes crash, hang, and reconnect as a matter of routine, and the
//! TEE-side protocol must keep serving through all of it. Every backend
//! fault therefore surfaces as a [`GpuError`] value that the `dk-core`
//! session either converts into the quarantine + recovery flow (a lost
//! worker is handled exactly like a tampering worker: the TEE
//! reconstructs its row) or fails closed with a typed session error —
//! never a process abort.

use crate::worker::WorkerId;

/// A fault in the accelerator backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// The worker is unreachable: its thread terminated, its process
    /// died, or its connection broke and could not be re-established.
    WorkerLost {
        /// Which worker was lost.
        worker: WorkerId,
        /// Human-readable cause (channel closed, connect refused, ...).
        detail: String,
    },
    /// The worker did not answer within the configured deadline. A
    /// timed-out worker may still be alive (straggler); the caller
    /// decides whether to route around it.
    Timeout {
        /// Which worker timed out.
        worker: WorkerId,
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
    /// More jobs were submitted than the fleet has workers.
    Oversubscribed {
        /// Jobs in the submission.
        jobs: usize,
        /// Workers in the fleet.
        workers: usize,
    },
    /// A remote worker answered with a protocol-level failure (e.g. a
    /// `*Stored` job referencing an encoding it does not hold).
    Remote {
        /// Which worker reported the failure.
        worker: WorkerId,
        /// The worker's error message.
        message: String,
    },
    /// A malformed or incompatible wire frame.
    Protocol {
        /// What was wrong with the frame.
        detail: String,
    },
}

impl GpuError {
    /// Shorthand constructor for [`GpuError::WorkerLost`].
    pub fn lost(worker: WorkerId, detail: impl Into<String>) -> Self {
        GpuError::WorkerLost { worker, detail: detail.into() }
    }

    /// The worker the fault is attributable to, if any.
    pub fn worker(&self) -> Option<WorkerId> {
        match self {
            GpuError::WorkerLost { worker, .. }
            | GpuError::Timeout { worker, .. }
            | GpuError::Remote { worker, .. } => Some(*worker),
            GpuError::Oversubscribed { .. } | GpuError::Protocol { .. } => None,
        }
    }
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::WorkerLost { worker, detail } => {
                write!(f, "{worker} lost: {detail}")
            }
            GpuError::Timeout { worker, waited_ms } => {
                write!(f, "{worker} timed out after {waited_ms} ms")
            }
            GpuError::Oversubscribed { jobs, workers } => {
                write!(f, "more jobs ({jobs}) than workers ({workers})")
            }
            GpuError::Remote { worker, message } => {
                write!(f, "{worker} reported a failure: {message}")
            }
            GpuError::Protocol { detail } => write!(f, "wire protocol error: {detail}"),
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_attribution() {
        let e = GpuError::lost(WorkerId(3), "inbox closed");
        assert!(e.to_string().contains("gpu3"));
        assert_eq!(e.worker(), Some(WorkerId(3)));
        let t = GpuError::Timeout { worker: WorkerId(1), waited_ms: 40 };
        assert!(t.to_string().contains("40 ms"));
        assert_eq!(t.worker(), Some(WorkerId(1)));
        let o = GpuError::Oversubscribed { jobs: 5, workers: 3 };
        assert!(o.to_string().contains("more jobs"));
        assert_eq!(o.worker(), None);
    }
}
