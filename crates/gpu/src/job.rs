//! The bilinear jobs DarKnight offloads to accelerators.
//!
//! Everything here is in the masked field domain `F_{2^25−39}`; workers
//! never see floats or raw inputs.

use dk_field::F25;
use dk_linalg::conv::{conv2d_backward_input_ws, conv2d_backward_weight_ws, conv2d_forward_ws};
use dk_linalg::{
    matmul_a_bt_into, matmul_at_b_into, matmul_into, Conv2dShape, Tensor, Workspace,
};
use std::sync::Arc;

/// A bilinear computation request.
///
/// Weights are shared via [`Arc`]: the model is public to all workers
/// (the paper keeps `W` outside the enclave) and can be large.
#[derive(Debug, Clone, PartialEq)]
pub enum LinearJob {
    /// `y = W ∗ x̄` — the forward pass on one encoded input.
    ConvForward {
        /// Quantized public weights `[oc, ic/g, kh, kw]`.
        weights: Arc<Tensor<F25>>,
        /// One encoded input `[1, ic, h, w]`.
        x: Tensor<F25>,
        /// Convolution geometry.
        shape: Conv2dShape,
    },
    /// `Eq_j = ⟨δ̃_j, x̄_j⟩` — the backward weight-gradient term on the
    /// worker's stored encoding (Eq. 4 of the paper).
    ConvWeightGrad {
        /// β-combined quantized gradient `[1, oc, oh, ow]`.
        delta: Tensor<F25>,
        /// The stored encoded input `[1, ic, h, w]`.
        x: Tensor<F25>,
        /// Convolution geometry.
        shape: Conv2dShape,
    },
    /// `dx = Wᵀ ⊛ δ` — the backward data term, offloaded *without*
    /// encoding (contains no input information; §4.2 item 2).
    ConvBackwardData {
        /// Quantized public weights.
        weights: Arc<Tensor<F25>>,
        /// Quantized gradients `[n, oc, oh, ow]`.
        delta: Tensor<F25>,
        /// Convolution geometry.
        shape: Conv2dShape,
        /// Original input spatial size.
        input_hw: (usize, usize),
    },
    /// `y = x̄·Wᵀ` for a dense layer; `x` is `[1, in]`.
    DenseForward {
        /// Quantized public weights `[out, in]`.
        weights: Arc<Tensor<F25>>,
        /// One encoded input row.
        x: Tensor<F25>,
    },
    /// `Eq_j = δ̃_jᵀ·x̄_j` for a dense layer.
    DenseWeightGrad {
        /// β-combined quantized gradient `[1, out]`.
        delta: Tensor<F25>,
        /// Stored encoded input `[1, in]`.
        x: Tensor<F25>,
    },
    /// `dx = δ·W` for a dense layer (unencoded offload).
    DenseBackwardData {
        /// Quantized public weights `[out, in]`.
        weights: Arc<Tensor<F25>>,
        /// Quantized gradients `[n, out]`.
        delta: Tensor<F25>,
    },
    /// `Eq_j = ⟨Σ_i β_{j,i} δ^{(i)}, x̄_j⟩` where `x̄_j` is the encoding
    /// this worker stored during the forward pass. The worker computes
    /// the β-combination itself — exactly the paper's protocol ("δ(i)s
    /// are multiplied with the β_{j,i} in the GPUs", §4.2).
    ConvWeightGradStored {
        /// All K quantized per-example gradients `[k, oc, oh, ow]`.
        delta_batch: Arc<Tensor<F25>>,
        /// This worker's public row of `B`.
        beta: Vec<F25>,
        /// Which stored encoding to use.
        layer_id: u64,
        /// Convolution geometry.
        shape: Conv2dShape,
    },
    /// Dense-layer variant of [`LinearJob::ConvWeightGradStored`].
    DenseWeightGradStored {
        /// All K quantized per-example gradients `[k, out]`.
        delta_batch: Arc<Tensor<F25>>,
        /// This worker's public row of `B`.
        beta: Vec<F25>,
        /// Which stored encoding to use.
        layer_id: u64,
    },
}

/// Computes `δ̃ = Σ_i β_i · δ_i` over the batch dimension, yielding a
/// single gradient image `[1, ...]`.
///
/// # Panics
///
/// Panics if `beta.len()` differs from the batch size.
pub fn beta_combine(delta_batch: &Tensor<F25>, beta: &[F25]) -> Tensor<F25> {
    let k = delta_batch.shape()[0];
    assert_eq!(beta.len(), k, "one beta per gradient");
    let mut shape = delta_batch.shape().to_vec();
    shape[0] = 1;
    if k == 0 {
        return Tensor::zeros(&shape);
    }
    // βᵀ[1 × k] · Δ[k × elems]: one delayed-reduction matmul instead of
    // k scaled-vector passes over the output.
    let elems = delta_batch.len() / k;
    let combined = dk_linalg::matmul(beta, delta_batch.as_slice(), 1, k, elems);
    Tensor::from_vec(&shape, combined)
}

/// The result of a [`LinearJob`].
pub type JobOutput = Tensor<F25>;

impl LinearJob {
    /// Executes the job honestly (the math a real GPU would run).
    /// Allocating wrapper over [`LinearJob::execute_ws`].
    ///
    /// # Panics
    ///
    /// Panics on `*Stored` variants — those need a worker's stored
    /// encoding; use [`crate::worker::GpuWorker::execute`] instead.
    pub fn execute(&self) -> JobOutput {
        self.execute_ws(&mut Workspace::new())
    }

    /// Executes the job with all kernel scratch (im2col columns,
    /// packed `Aᵀ` panels, gradient columns) *and* the output tensor
    /// drawn from `ws` — workers own one workspace each, so
    /// steady-state job streams stop re-allocating per job. The output
    /// leaves the accelerator for the TEE, which hands it back via
    /// [`crate::GpuExec::recycle_outputs`] once decoded, closing the
    /// loop. Bit-for-bit identical to [`LinearJob::execute`].
    ///
    /// # Panics
    ///
    /// Panics on `*Stored` variants — those need a worker's stored
    /// encoding; use [`crate::worker::GpuWorker::execute`] instead.
    pub fn execute_ws(&self, ws: &mut Workspace) -> JobOutput {
        match self {
            LinearJob::ConvWeightGradStored { .. } | LinearJob::DenseWeightGradStored { .. } => {
                panic!("stored-encoding jobs must be executed by a worker")
            }
            LinearJob::ConvForward { weights, x, shape } => conv2d_forward_ws(x, weights, shape, ws),
            LinearJob::ConvWeightGrad { delta, x, shape } => {
                conv2d_backward_weight_ws(delta, x, shape, ws)
            }
            LinearJob::ConvBackwardData { weights, delta, shape, input_hw } => {
                conv2d_backward_input_ws(delta, weights, shape, *input_hw, ws)
            }
            LinearJob::DenseForward { weights, x } => {
                let n = x.shape()[0];
                let in_f = x.shape()[1];
                let out_f = weights.shape()[0];
                let mut y = ws.take_tensor::<F25>(&[n, out_f]);
                matmul_a_bt_into(x.as_slice(), weights.as_slice(), y.as_mut_slice(), n, in_f, out_f);
                y
            }
            LinearJob::DenseWeightGrad { delta, x } => {
                let n = x.shape()[0];
                let in_f = x.shape()[1];
                let out_f = delta.shape()[1];
                // Output buffer and matmul scratch both come from `ws`,
                // so split the take to keep the borrows disjoint.
                let mut dw = ws.take_zeroed::<F25>(out_f * in_f);
                let shape = ws.take_shape(&[out_f, in_f]);
                matmul_at_b_into(delta.as_slice(), x.as_slice(), &mut dw, out_f, n, in_f, ws);
                Tensor::from_parts(shape, dw)
            }
            LinearJob::DenseBackwardData { weights, delta } => {
                let n = delta.shape()[0];
                let out_f = delta.shape()[1];
                let in_f = weights.shape()[1];
                let mut dx = ws.take_tensor::<F25>(&[n, in_f]);
                matmul_into(delta.as_slice(), weights.as_slice(), dx.as_mut_slice(), n, out_f, in_f);
                dx
            }
        }
    }

    /// Consumes the job, returning the owned encoded-input tensor for
    /// variants that carry one (the TEE recycles it into its workspace
    /// once the batch's outputs are decoded). Variants whose inputs are
    /// shared (`Arc`) or stored worker-side return `None`.
    pub fn into_input(self) -> Option<Tensor<F25>> {
        match self {
            LinearJob::ConvForward { x, .. }
            | LinearJob::ConvWeightGrad { x, .. }
            | LinearJob::DenseForward { x, .. }
            | LinearJob::DenseWeightGrad { x, .. } => Some(x),
            LinearJob::ConvBackwardData { .. }
            | LinearJob::DenseBackwardData { .. }
            | LinearJob::ConvWeightGradStored { .. }
            | LinearJob::DenseWeightGradStored { .. } => None,
        }
    }

    /// Multiply-accumulate count of this job (perf accounting).
    pub fn macs(&self) -> u64 {
        match self {
            LinearJob::ConvForward { x, shape, .. } => {
                shape.forward_macs(x.shape()[0], (x.shape()[2], x.shape()[3]))
            }
            LinearJob::ConvWeightGrad { x, shape, .. } => {
                shape.forward_macs(x.shape()[0], (x.shape()[2], x.shape()[3]))
            }
            LinearJob::ConvBackwardData { delta, shape, input_hw, .. } => {
                shape.forward_macs(delta.shape()[0], *input_hw)
            }
            LinearJob::DenseForward { weights, x } => {
                (x.shape()[0] * weights.len()) as u64
            }
            LinearJob::DenseWeightGrad { delta, x } => {
                (x.shape()[0] * x.shape()[1] * delta.shape()[1]) as u64
            }
            LinearJob::DenseBackwardData { weights, delta } => {
                (delta.shape()[0] * weights.len()) as u64
            }
            LinearJob::ConvWeightGradStored { delta_batch, shape, .. } => {
                // β-combination elements + one wgrad pass; the wgrad MACs
                // equal a forward pass over one (encoded) input with the
                // output spatial size of delta.
                let (oh, ow) = (delta_batch.shape()[2], delta_batch.shape()[3]);
                let combine = delta_batch.len() as u64;
                let wgrad = (shape.out_channels * oh * ow * shape.cg_in() * shape.kernel.0 * shape.kernel.1) as u64;
                combine + wgrad
            }
            LinearJob::DenseWeightGradStored { delta_batch, beta, .. } => {
                let out_f = delta_batch.shape()[1];
                // Combination + outer product; input features unknown here,
                // approximate with out_f * beta.len() for the combine and
                // leave the outer product to worker-side accounting.
                (delta_batch.len() + out_f * beta.len()) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(shape: &[usize], f: impl FnMut(usize) -> F25) -> Tensor<F25> {
        Tensor::from_fn(shape, f)
    }

    #[test]
    fn conv_forward_job_matches_kernel() {
        let shape = Conv2dShape::simple(2, 3, 3, 1, 1);
        let w = Arc::new(tensor(&shape.weight_shape(), |i| F25::new(i as u64 % 9)));
        let x = tensor(&[1, 2, 4, 4], |i| F25::new((i * 3) as u64 % 17));
        let job = LinearJob::ConvForward { weights: w.clone(), x: x.clone(), shape };
        assert_eq!(job.execute(), dk_linalg::conv::conv2d_forward(&x, &w, &shape));
    }

    #[test]
    fn dense_forward_job_values() {
        let w = Arc::new(tensor(&[2, 3], |i| F25::new(i as u64 + 1))); // [[1,2,3],[4,5,6]]
        let x = tensor(&[1, 3], |i| F25::new(i as u64 + 1)); // [1,2,3]
        let job = LinearJob::DenseForward { weights: w, x };
        let y = job.execute();
        assert_eq!(y.as_slice(), &[F25::new(14), F25::new(32)]);
    }

    #[test]
    fn dense_weight_grad_outer_product() {
        let delta = tensor(&[1, 2], |i| F25::new([3, 5][i]));
        let x = tensor(&[1, 3], |i| F25::new([1, 2, 4][i]));
        let job = LinearJob::DenseWeightGrad { delta, x };
        let dw = job.execute();
        assert_eq!(dw.shape(), &[2, 3]);
        // outer product [3,5]ᵀ · [1,2,4]
        let expect = [3u64, 6, 12, 5, 10, 20].map(F25::new);
        assert_eq!(dw.as_slice(), &expect);
    }

    #[test]
    fn conv_backward_data_shapes() {
        let shape = Conv2dShape::simple(2, 3, 3, 1, 1);
        let w = Arc::new(tensor(&shape.weight_shape(), |i| F25::new(i as u64)));
        let delta = tensor(&[2, 3, 4, 4], |i| F25::new(i as u64 % 7));
        let job = LinearJob::ConvBackwardData {
            weights: w,
            delta,
            shape,
            input_hw: (4, 4),
        };
        assert_eq!(job.execute().shape(), &[2, 2, 4, 4]);
    }

    #[test]
    fn macs_counts_positive() {
        let shape = Conv2dShape::simple(2, 3, 3, 1, 1);
        let w = Arc::new(tensor(&shape.weight_shape(), |_| F25::ONE));
        let x = tensor(&[1, 2, 4, 4], |_| F25::ONE);
        let job = LinearJob::ConvForward { weights: w, x, shape };
        assert_eq!(job.macs(), 3 * 16 * 2 * 9);
    }
}
