//! Empirical privacy analysis of colluding workers.
//!
//! The paper's §5 proves perfect privacy for coalitions of at most `M`
//! workers: their observations `X·A1_I + R·A2_I` look uniform because
//! any ≤M columns of the MDS matrix `A2` are full rank, so no linear
//! combination cancels the noise. This module provides the matching
//! *empirical* machinery:
//!
//! * [`uniformity_chi_square`] — a goodness-of-fit statistic over
//!   observed masked values (Lemma 1 says they are uniform on `F_p`).
//! * [`noise_cancellation_attack`] — a white-box audit: given the secret
//!   `A2` block (leaked, for analysis), find coefficients that cancel
//!   the noise across a coalition's observations. For coalitions of size
//!   `≤ M` this must fail; for size `M+1` it succeeds and reconstructs a
//!   raw linear combination of private inputs — demonstrating the exact
//!   tolerance boundary rather than asserting it.

use dk_field::{F25, FieldMatrix, P25};

/// Chi-square statistic of observed field values against the uniform
/// distribution over `F_p`, using `buckets` equal-width bins.
/// Degrees of freedom = `buckets − 1`.
///
/// # Panics
///
/// Panics if `buckets < 2` or no values are given.
pub fn uniformity_chi_square(values: &[F25], buckets: usize) -> f64 {
    assert!(buckets >= 2, "need at least 2 buckets");
    assert!(!values.is_empty(), "need at least one observation");
    let mut counts = vec![0usize; buckets];
    for v in values {
        let b = (v.value() as u128 * buckets as u128 / P25 as u128) as usize;
        counts[b.min(buckets - 1)] += 1;
    }
    let expected = values.len() as f64 / buckets as f64;
    counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum()
}

/// The 99.9th percentile of a chi-square distribution with `df` degrees
/// of freedom (Wilson–Hilferty approximation) — the acceptance threshold
/// used by uniformity tests.
pub fn chi_square_threshold_999(df: usize) -> f64 {
    let df = df as f64;
    let z = 3.09; // z-score of 0.999
    let t = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * t * t * t
}

/// Result of a white-box noise-cancellation attempt.
#[derive(Debug, Clone)]
pub enum AttackOutcome {
    /// No coefficient vector cancels the noise — the coalition learns
    /// nothing (privacy holds).
    NoiseUncancellable,
    /// The attack found coefficients `c` with `A2_I · c = 0`; the
    /// returned vector is `Σ c_j · x̄_j = X·(A1_I·c)` — a *noise-free*
    /// linear combination of private inputs (privacy broken).
    InputCombinationRecovered {
        /// The cancelling coefficients, one per coalition member.
        coefficients: Vec<F25>,
        /// The recovered masked-noise-free combination.
        recovered: Vec<F25>,
    },
}

impl AttackOutcome {
    /// True if the coalition broke privacy.
    pub fn is_breach(&self) -> bool {
        matches!(self, AttackOutcome::InputCombinationRecovered { .. })
    }
}

/// Attempts the noise-cancellation attack.
///
/// * `a2_coalition` — the columns of the secret `A2 ∈ F^{M×S}` indexed
///   by the coalition (shape `M × |I|`). Supplying it models a white-box
///   audit of the encoding, not an adversary capability.
/// * `observations` — the coalition's masked vectors `x̄_j`, one per
///   member, all the same length.
///
/// Finds a nonzero `c` in the null space of `A2_I` if one exists and
/// applies it to the observations.
///
/// # Panics
///
/// Panics if observation lengths are inconsistent with the coalition
/// size.
pub fn noise_cancellation_attack(
    a2_coalition: &FieldMatrix<P25>,
    observations: &[Vec<F25>],
) -> AttackOutcome {
    let coalition = a2_coalition.cols();
    assert_eq!(observations.len(), coalition, "one observation per coalition member");
    let Some(c) = null_space_vector(a2_coalition) else {
        return AttackOutcome::NoiseUncancellable;
    };
    let n = observations[0].len();
    let mut recovered = vec![F25::ZERO; n];
    for (obs, &cj) in observations.iter().zip(&c) {
        assert_eq!(obs.len(), n, "inconsistent observation lengths");
        for (r, &o) in recovered.iter_mut().zip(obs) {
            *r += o * cj;
        }
    }
    AttackOutcome::InputCombinationRecovered { coefficients: c, recovered }
}

/// Finds a nonzero vector in the null space of `m` (columns > rank), or
/// `None` if the columns are linearly independent.
pub fn null_space_vector(m: &FieldMatrix<P25>) -> Option<Vec<F25>> {
    let rows = m.rows();
    let cols = m.cols();
    // Row-reduce a copy, tracking pivot columns.
    let mut a = m.clone();
    let mut pivot_cols = Vec::new();
    let mut r = 0usize;
    for c in 0..cols {
        if r >= rows {
            break;
        }
        let Some(p) = (r..rows).find(|&i| !a[(i, c)].is_zero()) else {
            continue;
        };
        // swap rows p, r
        if p != r {
            for cc in 0..cols {
                let tmp = a[(p, cc)];
                a[(p, cc)] = a[(r, cc)];
                a[(r, cc)] = tmp;
            }
        }
        let inv = a[(r, c)].inv().expect("pivot nonzero");
        for cc in 0..cols {
            a[(r, cc)] *= inv;
        }
        for i in 0..rows {
            if i != r && !a[(i, c)].is_zero() {
                let f = a[(i, c)];
                for cc in 0..cols {
                    let v = a[(r, cc)];
                    a[(i, cc)] -= f * v;
                }
            }
        }
        pivot_cols.push(c);
        r += 1;
    }
    // A free column exists iff rank < cols.
    let free_col = (0..cols).find(|c| !pivot_cols.contains(c))?;
    // Back-substitute: x[free] = 1, x[pivot_col of row i] = -a[i][free].
    let mut x = vec![F25::ZERO; cols];
    x[free_col] = F25::ONE;
    for (row, &pc) in pivot_cols.iter().enumerate() {
        x[pc] = -a[(row, free_col)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::{FieldRng, vandermonde::mds_matrix};

    #[test]
    fn chi_square_uniform_passes() {
        let mut rng = FieldRng::seed_from(1);
        let values: Vec<F25> = (0..32_000).map(|_| rng.uniform()).collect();
        let chi2 = uniformity_chi_square(&values, 16);
        assert!(chi2 < chi_square_threshold_999(15), "chi2={chi2}");
    }

    #[test]
    fn chi_square_nonuniform_fails() {
        // Raw small-magnitude quantized data is wildly non-uniform.
        let values: Vec<F25> = (0..32_000).map(|i| F25::new(i % 500)).collect();
        let chi2 = uniformity_chi_square(&values, 16);
        assert!(chi2 > chi_square_threshold_999(15) * 100.0, "chi2={chi2}");
    }

    #[test]
    fn threshold_is_sane() {
        // chi2_0.999 for df=15 is ~37.7.
        let t = chi_square_threshold_999(15);
        assert!((35.0..41.0).contains(&t), "t={t}");
    }

    #[test]
    fn null_space_of_full_rank_is_empty() {
        let mut rng = FieldRng::seed_from(2);
        let m = mds_matrix::<P25>(3, 3, &mut rng);
        assert!(null_space_vector(&m).is_none());
    }

    #[test]
    fn null_space_found_for_wide_matrix() {
        let mut rng = FieldRng::seed_from(3);
        let m = mds_matrix::<P25>(2, 4, &mut rng);
        let c = null_space_vector(&m).expect("wide matrix has null space");
        // Verify A·c = 0.
        let prod = m.mul_vec(&c);
        assert!(prod.iter().all(|v| v.is_zero()));
        assert!(c.iter().any(|v| !v.is_zero()));
    }

    #[test]
    fn attack_fails_at_or_below_tolerance() {
        // M = 2 noise vectors; coalition of 2 sees full-rank A2 columns.
        let mut rng = FieldRng::seed_from(4);
        let a2 = mds_matrix::<P25>(2, 5, &mut rng);
        let coalition = a2.submatrix(&[0, 1], &[1, 3]);
        let obs = vec![rng.uniform_vec::<P25>(10), rng.uniform_vec::<P25>(10)];
        let outcome = noise_cancellation_attack(&coalition, &obs);
        assert!(!outcome.is_breach());
    }

    #[test]
    fn attack_succeeds_beyond_tolerance() {
        // Coalition of 3 > M=2: noise cancellable.
        let mut rng = FieldRng::seed_from(5);
        let a2 = mds_matrix::<P25>(2, 5, &mut rng);
        let coalition = a2.submatrix(&[0, 1], &[0, 2, 4]);
        let obs = vec![
            rng.uniform_vec::<P25>(10),
            rng.uniform_vec::<P25>(10),
            rng.uniform_vec::<P25>(10),
        ];
        let outcome = noise_cancellation_attack(&coalition, &obs);
        assert!(outcome.is_breach());
    }

    #[test]
    fn recovered_combination_is_noise_free() {
        // Construct real encodings x̄ = X·A1 + R·A2 and verify the attack
        // output equals X·(A1·c) exactly (no noise residue).
        let mut rng = FieldRng::seed_from(6);
        let n = 8; // input dimension
        let k = 2; // inputs
        let m = 1; // noise vectors
        let s = k + m + 1; // one extra column so a coalition of m+1 < s exists
        let a1 = FieldMatrix::<P25>::random(k, s, &mut rng);
        let a2 = mds_matrix::<P25>(m, s, &mut rng);
        let x: Vec<Vec<F25>> = (0..k).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let r: Vec<Vec<F25>> = (0..m).map(|_| rng.uniform_vec::<P25>(n)).collect();
        // x̄_j = Σ_i x_i A1[i][j] + Σ_t r_t A2[t][j]
        let encode = |j: usize| -> Vec<F25> {
            let mut out = vec![F25::ZERO; n];
            for (i, xi) in x.iter().enumerate() {
                for (o, &v) in out.iter_mut().zip(xi) {
                    *o += v * a1[(i, j)];
                }
            }
            for (t, rt) in r.iter().enumerate() {
                for (o, &v) in out.iter_mut().zip(rt) {
                    *o += v * a2[(t, j)];
                }
            }
            out
        };
        // Coalition of size m+1 = 2: workers 0 and 1.
        let coalition_cols = [0usize, 1];
        let a2_coal = a2.submatrix(&[0], &coalition_cols);
        let obs: Vec<Vec<F25>> = coalition_cols.iter().map(|&j| encode(j)).collect();
        let AttackOutcome::InputCombinationRecovered { coefficients, recovered } =
            noise_cancellation_attack(&a2_coal, &obs)
        else {
            panic!("attack should succeed for coalition > M");
        };
        // Expected: X·(A1_I·c)
        let mut expect = vec![F25::ZERO; n];
        for (i, xi) in x.iter().enumerate() {
            let mut coeff = F25::ZERO;
            for (ci, &j) in coalition_cols.iter().enumerate() {
                coeff += a1[(i, j)] * coefficients[ci];
            }
            for (e, &v) in expect.iter_mut().zip(xi) {
                *e += v * coeff;
            }
        }
        assert_eq!(recovered, expect);
    }
}
