//! The framed wire protocol spoken between the TEE-side transport
//! ([`crate::TcpFleet`]) and remote worker processes (`dk_gpu_worker`).
//!
//! Everything a worker touches is already masked field data, so the
//! protocol carries plain `F_{2^25−39}` values — confidentiality comes
//! from DarKnight's encoding, not from the transport. What the framing
//! buys is *fault attribution*: a short read, a bad magic, or a version
//! skew is a typed [`std::io::Error`] the transport converts into
//! [`GpuError::WorkerLost`](crate::GpuError::WorkerLost) /
//! [`Protocol`](crate::GpuError::Protocol), never a process abort.
//!
//! ## Frame layout (all little-endian)
//!
//! ```text
//! magic   u32   0x444B_4E54  ("DKNT")
//! version u16   protocol version (1)
//! type    u16   message discriminant
//! len     u32   payload byte length
//! payload [u8; len]
//! ```
//!
//! ## Payload encodings
//!
//! * **Tensor**: `ndim: u32`, `dims: [u32; ndim]`, then one `u32` per
//!   element (field values are `< 2^25`).
//! * **Conv2dShape**: nine `u32`s — in/out channels, kernel, stride,
//!   padding (pairs), groups.
//! * **LinearJob**: one tag byte (variant, 0–7) followed by the
//!   variant's fields in declaration order.
//!
//! The protocol is deliberately session-free beyond the `Hello`
//! handshake: each connection serves one logical worker, messages are
//! answered in order, and the TEE side never pipelines more than one
//! virtual batch per worker connection without reading the replies back
//! (per-worker FIFO, same as the in-process dispatcher).

use crate::job::LinearJob;
use dk_field::F25;
use dk_linalg::{Conv2dShape, Tensor};
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Frame magic: `"DKNT"`.
pub const MAGIC: u32 = 0x444B_4E54;
/// Protocol version.
pub const VERSION: u16 = 1;
/// Upper bound on a single payload (guards against garbage lengths from
/// a malicious or confused peer before any allocation happens).
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// A message on the wire. The `type` field of the frame header is the
/// variant's [`WireMsg::msg_type`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// TEE → worker, once per connection: claims a worker identity.
    Hello {
        /// Worker id within the fleet.
        worker_id: u64,
        /// RNG seed for the remote worker's behaviour stream.
        seed: u64,
        /// Modeled latency `(base_ns, ns_per_kmac)`; `(0, 0)` = none.
        latency: (u64, u64),
    },
    /// Worker → TEE: handshake accepted.
    HelloAck,
    /// TEE → worker: execute one job and reply with `Output` or `Fail`.
    Run {
        /// The job to execute.
        job: LinearJob,
    },
    /// Worker → TEE: the job's result.
    Output {
        /// The computed tensor.
        tensor: Tensor<F25>,
    },
    /// TEE → worker: store a forward encoding under a context id.
    Store {
        /// Context id (`batch << 32 | layer ordinal`).
        ctx_id: u64,
        /// The encoded input.
        tensor: Tensor<F25>,
    },
    /// TEE → worker: release a stored context.
    Release {
        /// Context id to drop.
        ctx_id: u64,
    },
    /// Worker → TEE: the job could not be executed (e.g. a `*Stored`
    /// job referencing an encoding the worker does not hold).
    Fail {
        /// Human-readable reason.
        message: String,
    },
    /// TEE → worker: shut the worker process down.
    Shutdown,
}

impl WireMsg {
    /// The frame-header discriminant for this message.
    pub fn msg_type(&self) -> u16 {
        match self {
            WireMsg::Hello { .. } => 1,
            WireMsg::HelloAck => 2,
            WireMsg::Run { .. } => 3,
            WireMsg::Output { .. } => 4,
            WireMsg::Store { .. } => 5,
            WireMsg::Release { .. } => 6,
            WireMsg::Fail { .. } => 7,
            WireMsg::Shutdown => 8,
        }
    }
}

fn bad(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

// ---- primitive writers/readers over a byte buffer ----

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("length overflow"))?;
        if end > self.buf.len() {
            return Err(bad("payload truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn finish(self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(bad("trailing bytes in payload"));
        }
        Ok(())
    }
}

// ---- composite encodings ----

fn put_tensor(buf: &mut Vec<u8>, t: &Tensor<F25>) {
    put_u32(buf, t.shape().len() as u32);
    for &d in t.shape() {
        put_u32(buf, d as u32);
    }
    for &v in t.as_slice() {
        put_u32(buf, v.value() as u32);
    }
}

fn get_tensor(c: &mut Cursor) -> io::Result<Tensor<F25>> {
    let ndim = c.u32()? as usize;
    if ndim > 8 {
        return Err(bad(format!("tensor rank {ndim} too large")));
    }
    let mut dims = Vec::with_capacity(ndim);
    let mut len = 1usize;
    for _ in 0..ndim {
        let d = c.u32()? as usize;
        len = len.checked_mul(d).ok_or_else(|| bad("tensor size overflow"))?;
        dims.push(d);
    }
    if len > (MAX_PAYLOAD as usize) / 4 {
        return Err(bad(format!("tensor of {len} elements exceeds payload cap")));
    }
    let mut vals = Vec::with_capacity(len);
    for _ in 0..len {
        let raw = c.u32()? as u64;
        if raw >= dk_field::P25 {
            return Err(bad(format!("field value {raw} out of range")));
        }
        vals.push(F25::new(raw));
    }
    Ok(Tensor::from_vec(&dims, vals))
}

fn put_shape(buf: &mut Vec<u8>, s: &Conv2dShape) {
    for v in [
        s.in_channels,
        s.out_channels,
        s.kernel.0,
        s.kernel.1,
        s.stride.0,
        s.stride.1,
        s.padding.0,
        s.padding.1,
        s.groups,
    ] {
        put_u32(buf, v as u32);
    }
}

fn get_shape(c: &mut Cursor) -> io::Result<Conv2dShape> {
    let mut v = [0usize; 9];
    for slot in &mut v {
        *slot = c.u32()? as usize;
    }
    let [ic, oc, kh, kw, sh, sw, ph, pw, g] = v;
    // Validate what Conv2dShape::new would assert, but as wire errors.
    if ic == 0 || oc == 0 || g == 0 || kh == 0 || kw == 0 || sh == 0 || sw == 0 {
        return Err(bad("degenerate conv shape"));
    }
    if ic % g != 0 || oc % g != 0 {
        return Err(bad("conv groups must divide channel counts"));
    }
    Ok(Conv2dShape::new(ic, oc, (kh, kw), (sh, sw), (ph, pw), g))
}

fn put_beta(buf: &mut Vec<u8>, beta: &[F25]) {
    put_u32(buf, beta.len() as u32);
    for &b in beta {
        put_u32(buf, b.value() as u32);
    }
}

fn get_beta(c: &mut Cursor) -> io::Result<Vec<F25>> {
    let n = c.u32()? as usize;
    if n > 1 << 20 {
        return Err(bad("beta row too long"));
    }
    let mut beta = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = c.u32()? as u64;
        if raw >= dk_field::P25 {
            return Err(bad(format!("field value {raw} out of range")));
        }
        beta.push(F25::new(raw));
    }
    Ok(beta)
}

fn put_job(buf: &mut Vec<u8>, job: &LinearJob) {
    match job {
        LinearJob::ConvForward { weights, x, shape } => {
            buf.push(0);
            put_tensor(buf, weights);
            put_tensor(buf, x);
            put_shape(buf, shape);
        }
        LinearJob::ConvWeightGrad { delta, x, shape } => {
            buf.push(1);
            put_tensor(buf, delta);
            put_tensor(buf, x);
            put_shape(buf, shape);
        }
        LinearJob::ConvBackwardData { weights, delta, shape, input_hw } => {
            buf.push(2);
            put_tensor(buf, weights);
            put_tensor(buf, delta);
            put_shape(buf, shape);
            put_u32(buf, input_hw.0 as u32);
            put_u32(buf, input_hw.1 as u32);
        }
        LinearJob::DenseForward { weights, x } => {
            buf.push(3);
            put_tensor(buf, weights);
            put_tensor(buf, x);
        }
        LinearJob::DenseWeightGrad { delta, x } => {
            buf.push(4);
            put_tensor(buf, delta);
            put_tensor(buf, x);
        }
        LinearJob::DenseBackwardData { weights, delta } => {
            buf.push(5);
            put_tensor(buf, weights);
            put_tensor(buf, delta);
        }
        LinearJob::ConvWeightGradStored { delta_batch, beta, layer_id, shape } => {
            buf.push(6);
            put_tensor(buf, delta_batch);
            put_beta(buf, beta);
            put_u64(buf, *layer_id);
            put_shape(buf, shape);
        }
        LinearJob::DenseWeightGradStored { delta_batch, beta, layer_id } => {
            buf.push(7);
            put_tensor(buf, delta_batch);
            put_beta(buf, beta);
            put_u64(buf, *layer_id);
        }
    }
}

fn get_job(c: &mut Cursor) -> io::Result<LinearJob> {
    Ok(match c.u8()? {
        0 => LinearJob::ConvForward {
            weights: Arc::new(get_tensor(c)?),
            x: get_tensor(c)?,
            shape: get_shape(c)?,
        },
        1 => LinearJob::ConvWeightGrad {
            delta: get_tensor(c)?,
            x: get_tensor(c)?,
            shape: get_shape(c)?,
        },
        2 => LinearJob::ConvBackwardData {
            weights: Arc::new(get_tensor(c)?),
            delta: get_tensor(c)?,
            shape: get_shape(c)?,
            input_hw: (c.u32()? as usize, c.u32()? as usize),
        },
        3 => LinearJob::DenseForward { weights: Arc::new(get_tensor(c)?), x: get_tensor(c)? },
        4 => LinearJob::DenseWeightGrad { delta: get_tensor(c)?, x: get_tensor(c)? },
        5 => LinearJob::DenseBackwardData {
            weights: Arc::new(get_tensor(c)?),
            delta: get_tensor(c)?,
        },
        6 => LinearJob::ConvWeightGradStored {
            delta_batch: Arc::new(get_tensor(c)?),
            beta: get_beta(c)?,
            layer_id: c.u64()?,
            shape: get_shape(c)?,
        },
        7 => LinearJob::DenseWeightGradStored {
            delta_batch: Arc::new(get_tensor(c)?),
            beta: get_beta(c)?,
            layer_id: c.u64()?,
        },
        t => return Err(bad(format!("unknown job tag {t}"))),
    })
}

/// Serializes a message into its payload bytes (header excluded).
fn encode_payload(msg: &WireMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    match msg {
        WireMsg::Hello { worker_id, seed, latency } => {
            put_u64(&mut buf, *worker_id);
            put_u64(&mut buf, *seed);
            put_u64(&mut buf, latency.0);
            put_u64(&mut buf, latency.1);
        }
        WireMsg::HelloAck | WireMsg::Shutdown => {}
        WireMsg::Run { job } => put_job(&mut buf, job),
        WireMsg::Output { tensor } => put_tensor(&mut buf, tensor),
        WireMsg::Store { ctx_id, tensor } => {
            put_u64(&mut buf, *ctx_id);
            put_tensor(&mut buf, tensor);
        }
        WireMsg::Release { ctx_id } => put_u64(&mut buf, *ctx_id),
        WireMsg::Fail { message } => {
            put_u32(&mut buf, message.len() as u32);
            buf.extend_from_slice(message.as_bytes());
        }
    }
    buf
}

fn decode_payload(msg_type: u16, payload: &[u8]) -> io::Result<WireMsg> {
    let mut c = Cursor::new(payload);
    let msg = match msg_type {
        1 => WireMsg::Hello {
            worker_id: c.u64()?,
            seed: c.u64()?,
            latency: (c.u64()?, c.u64()?),
        },
        2 => WireMsg::HelloAck,
        3 => WireMsg::Run { job: get_job(&mut c)? },
        4 => WireMsg::Output { tensor: get_tensor(&mut c)? },
        5 => WireMsg::Store { ctx_id: c.u64()?, tensor: get_tensor(&mut c)? },
        6 => WireMsg::Release { ctx_id: c.u64()? },
        7 => {
            let n = c.u32()? as usize;
            let bytes = c.take(n)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| bad("fail message is not utf-8"))?
                .to_string();
            WireMsg::Fail { message }
        }
        8 => WireMsg::Shutdown,
        t => return Err(bad(format!("unknown message type {t}"))),
    };
    c.finish()?;
    Ok(msg)
}

/// Writes one framed message.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_msg<W: Write>(w: &mut W, msg: &WireMsg) -> io::Result<()> {
    write_msg_counted(w, msg).map(|_| ())
}

/// Writes one framed message and reports the frame size (header +
/// payload) in bytes — the transport's byte accounting hook.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_msg_counted<W: Write>(w: &mut W, msg: &WireMsg) -> io::Result<usize> {
    let payload = encode_payload(msg);
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&msg.msg_type().to_le_bytes());
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(header.len() + payload.len())
}

/// Reads one framed message.
///
/// # Errors
///
/// I/O errors from the reader; `InvalidData` for bad magic, version
/// skew, oversized payloads, or malformed payload contents.
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<WireMsg> {
    read_msg_counted(r).map(|(msg, _)| msg)
}

/// Reads one framed message and reports the frame size (header +
/// payload) in bytes.
///
/// # Errors
///
/// Same conditions as [`read_msg`].
pub fn read_msg_counted<R: Read>(r: &mut R) -> io::Result<(WireMsg, usize)> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(bad(format!("bad frame magic {magic:#010x}")));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(bad(format!("protocol version {version} (want {VERSION})")));
    }
    let msg_type = u16::from_le_bytes(header[6..8].try_into().unwrap());
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(bad(format!("payload of {len} bytes exceeds cap")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(msg_type, &payload).map(|msg| (msg, header.len() + payload.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &WireMsg) -> WireMsg {
        let mut buf = Vec::new();
        write_msg(&mut buf, msg).unwrap();
        let got = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(&got, msg);
        got
    }

    fn tensor(shape: &[usize], scale: u64) -> Tensor<F25> {
        Tensor::from_fn(shape, |i| F25::new((i as u64 * scale + 7) % dk_field::P25))
    }

    #[test]
    fn control_messages_roundtrip() {
        roundtrip(&WireMsg::Hello { worker_id: 3, seed: 42, latency: (1000, 25) });
        roundtrip(&WireMsg::HelloAck);
        roundtrip(&WireMsg::Release { ctx_id: (9 << 32) | 4 });
        roundtrip(&WireMsg::Fail { message: "no stored encoding for layer 7".into() });
        roundtrip(&WireMsg::Shutdown);
    }

    #[test]
    fn tensors_and_store_roundtrip() {
        roundtrip(&WireMsg::Output { tensor: tensor(&[2, 3, 4], 13) });
        roundtrip(&WireMsg::Store { ctx_id: 88, tensor: tensor(&[1, 5], 3) });
        // Scalar (rank-0) tensors survive too.
        roundtrip(&WireMsg::Output { tensor: Tensor::from_vec(&[], vec![F25::new(5)]) });
    }

    #[test]
    fn every_job_variant_roundtrips() {
        let shape = Conv2dShape::simple(2, 4, 3, 1, 1);
        let jobs = vec![
            LinearJob::ConvForward {
                weights: Arc::new(tensor(&shape.weight_shape(), 5)),
                x: tensor(&[1, 2, 4, 4], 3),
                shape,
            },
            LinearJob::ConvWeightGrad {
                delta: tensor(&[1, 4, 4, 4], 2),
                x: tensor(&[1, 2, 4, 4], 3),
                shape,
            },
            LinearJob::ConvBackwardData {
                weights: Arc::new(tensor(&shape.weight_shape(), 5)),
                delta: tensor(&[2, 4, 4, 4], 2),
                shape,
                input_hw: (4, 4),
            },
            LinearJob::DenseForward {
                weights: Arc::new(tensor(&[4, 6], 7)),
                x: tensor(&[1, 6], 2),
            },
            LinearJob::DenseWeightGrad { delta: tensor(&[1, 4], 9), x: tensor(&[1, 6], 2) },
            LinearJob::DenseBackwardData {
                weights: Arc::new(tensor(&[4, 6], 7)),
                delta: tensor(&[2, 4], 9),
            },
            LinearJob::ConvWeightGradStored {
                delta_batch: Arc::new(tensor(&[2, 4, 4, 4], 2)),
                beta: vec![F25::new(3), F25::new(11)],
                layer_id: (7 << 32) | 2,
                shape,
            },
            LinearJob::DenseWeightGradStored {
                delta_batch: Arc::new(tensor(&[2, 4], 9)),
                beta: vec![F25::new(3), F25::new(11)],
                layer_id: 5,
            },
        ];
        for job in jobs {
            let mut buf = Vec::new();
            write_msg(&mut buf, &WireMsg::Run { job: job.clone() }).unwrap();
            let got = read_msg(&mut &buf[..]).unwrap();
            let WireMsg::Run { job: decoded } = got else { panic!("wrong msg type") };
            // LinearJob has no PartialEq (Arc'd weights); compare via
            // execution where possible, fields otherwise.
            match (&job, &decoded) {
                (LinearJob::ConvWeightGradStored { layer_id: a, beta: ba, .. },
                 LinearJob::ConvWeightGradStored { layer_id: b, beta: bb, .. })
                | (LinearJob::DenseWeightGradStored { layer_id: a, beta: ba, .. },
                   LinearJob::DenseWeightGradStored { layer_id: b, beta: bb, .. }) => {
                    assert_eq!(a, b);
                    assert_eq!(ba, bb);
                }
                _ => assert_eq!(job.execute(), decoded.execute()),
            }
        }
    }

    #[test]
    fn corrupted_frames_are_typed_errors() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &WireMsg::Release { ctx_id: 1 }).unwrap();
        // Bad magic.
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert!(read_msg(&mut &bad_magic[..]).is_err());
        // Version skew.
        let mut bad_ver = buf.clone();
        bad_ver[4] = 99;
        assert!(read_msg(&mut &bad_ver[..]).is_err());
        // Truncated payload.
        let short = &buf[..buf.len() - 2];
        assert!(read_msg(&mut &short[..]).is_err());
        // Unknown message type.
        let mut bad_type = buf.clone();
        bad_type[6] = 0xEE;
        assert!(read_msg(&mut &bad_type[..]).is_err());
        // Trailing garbage inside the declared payload.
        let mut padded = Vec::new();
        write_msg(&mut padded, &WireMsg::HelloAck).unwrap();
        padded[8] = 4; // claim 4 payload bytes
        padded.extend_from_slice(&[0, 0, 0, 0]);
        assert!(read_msg(&mut &padded[..]).is_err());
    }

    #[test]
    fn out_of_range_field_values_rejected() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &WireMsg::Output { tensor: tensor(&[2], 1) }).unwrap();
        // Overwrite the first element with a value >= P25.
        let elt_off = buf.len() - 8;
        buf[elt_off..elt_off + 4].copy_from_slice(&(dk_field::P25 as u32).to_le_bytes());
        assert!(read_msg(&mut &buf[..]).is_err());
    }
}
