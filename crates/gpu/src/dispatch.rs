//! Asynchronous job dispatch over persistent per-worker OS threads.
//!
//! This is the primary execution interface of the fleet (the blocking
//! [`GpuCluster::execute`](crate::GpuCluster::execute) remains as the
//! sequential reference): a [`GpuDispatcher`] owns one long-lived OS
//! thread per worker, each fed by a bounded channel. Callers
//! [`submit`](GpuDispatcher::submit) a virtual batch of jobs and get a
//! [`Ticket`] back immediately; [`complete`](GpuDispatcher::complete)
//! blocks until the results are in. Between the two calls the submitting
//! (TEE) thread is free to encode the next virtual batch or decode the
//! previous one — the §7.1 overlap, for real.
//!
//! Guarantees:
//!
//! * **Per-worker FIFO.** Messages to one worker are processed in send
//!   order, so a stored encoding is always visible to the `*Stored` jobs
//!   submitted after it by the same thread.
//! * **Bounded queues.** Each worker's channel holds at most `depth`
//!   messages; a flooded fleet backpressures encoders instead of
//!   buffering unboundedly.
//! * **State fidelity.** Workers keep their full state (behaviour, RNG,
//!   stored encodings, observations, counters) across the dispatcher's
//!   lifetime; [`join`](GpuDispatcher::join) reassembles the original
//!   [`GpuCluster`] with everything the workers accumulated.

use crate::cluster::GpuCluster;
use crate::exec::GpuExec;
use crate::job::{JobOutput, LinearJob};
use crate::worker::{GpuWorker, WorkerId};
use dk_field::F25;
use dk_linalg::Tensor;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifies the virtual batch a submission belongs to (tracing and
/// bookkeeping; uniqueness is the submitter's concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchTag(pub u64);

/// What flows to a worker thread.
enum WorkerMsg {
    Run { job: Box<LinearJob>, reply: mpsc::Sender<JobOutput> },
    Store { ctx_id: u64, encoding: Tensor<F25> },
    Release { ctx_id: u64 },
}

/// A pending virtual-batch submission: redeem with
/// [`GpuDispatcher::complete`].
#[derive(Debug)]
pub struct Ticket {
    tag: BatchTag,
    replies: Vec<mpsc::Receiver<JobOutput>>,
}

impl Ticket {
    /// The tag this submission was made under.
    pub fn tag(&self) -> BatchTag {
        self.tag
    }

    /// Number of jobs in flight under this ticket.
    pub fn len(&self) -> usize {
        self.replies.len()
    }

    /// True if the ticket covers no jobs.
    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }
}

/// A pending single-job submission: redeem with
/// [`GpuDispatcher::complete_one`].
#[derive(Debug)]
pub struct JobTicket {
    reply: mpsc::Receiver<JobOutput>,
}

/// Persistent-thread asynchronous dispatcher over a worker fleet (see
/// module docs). Created with
/// [`GpuCluster::into_dispatcher`](crate::GpuCluster::into_dispatcher).
///
/// All methods take `&self`: the dispatcher is shared between the TEE
/// stage threads of a pipelined engine (typically behind an [`Arc`]).
#[derive(Debug)]
pub struct GpuDispatcher {
    senders: Vec<mpsc::SyncSender<WorkerMsg>>,
    handles: Vec<JoinHandle<GpuWorker>>,
    parallel: bool,
}

fn worker_main(mut worker: GpuWorker, rx: mpsc::Receiver<WorkerMsg>) -> GpuWorker {
    for msg in rx.iter() {
        match msg {
            WorkerMsg::Run { job, reply } => {
                // A send error means the submitter gave up on the
                // ticket; the job still ran (state advanced), which
                // mirrors a real accelerator that cannot be recalled.
                let _ = reply.send(worker.execute(&job));
            }
            WorkerMsg::Store { ctx_id, encoding } => worker.store_encoding(ctx_id, encoding),
            WorkerMsg::Release { ctx_id } => worker.remove_encoding(ctx_id),
        }
    }
    worker
}

impl GpuDispatcher {
    /// Spawns one thread per worker with a `depth`-bounded inbox.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or thread spawning fails.
    pub(crate) fn spawn(workers: Vec<GpuWorker>, depth: usize, parallel: bool) -> Self {
        assert!(depth > 0, "worker queues need capacity");
        let mut senders = Vec::with_capacity(workers.len());
        let mut handles = Vec::with_capacity(workers.len());
        for w in workers {
            let (tx, rx) = mpsc::sync_channel(depth);
            let name = format!("dk-gpu-{}", w.id());
            handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_main(w, rx))
                    .expect("spawn gpu worker thread"),
            );
            senders.push(tx);
        }
        Self { senders, handles, parallel }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    fn send(&self, w: usize, msg: WorkerMsg) {
        self.senders[w].send(msg).expect("gpu worker thread terminated early");
    }

    /// Submits `jobs[i]` to worker `i` and returns immediately.
    ///
    /// # Panics
    ///
    /// Panics if more jobs than workers are supplied, or if a worker
    /// thread has died.
    pub fn submit(&self, tag: BatchTag, jobs: Vec<LinearJob>) -> Ticket {
        assert!(
            jobs.len() <= self.senders.len(),
            "more jobs ({}) than workers ({})",
            jobs.len(),
            self.senders.len()
        );
        let mut replies = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            self.send(i, WorkerMsg::Run { job: Box::new(job), reply: tx });
            replies.push(rx);
        }
        Ticket { tag, replies }
    }

    /// Blocks until every job under the ticket finished; outputs are in
    /// worker order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died mid-job.
    pub fn complete(&self, ticket: Ticket) -> Vec<JobOutput> {
        ticket
            .replies
            .into_iter()
            .map(|rx| rx.recv().expect("gpu worker thread dropped a job"))
            .collect()
    }

    /// Submits one job to a specific worker.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the worker thread has died.
    pub fn submit_on(&self, id: WorkerId, job: LinearJob) -> JobTicket {
        let (tx, rx) = mpsc::channel();
        self.send(id.0, WorkerMsg::Run { job: Box::new(job), reply: tx });
        JobTicket { reply: rx }
    }

    /// Blocks until a single-job submission finished.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread died mid-job.
    pub fn complete_one(&self, ticket: JobTicket) -> JobOutput {
        ticket.reply.recv().expect("gpu worker thread dropped a job")
    }

    /// Stores per-worker forward encodings under a context id (worker
    /// `i` receives `encodings[i]`). Per-worker FIFO ordering makes the
    /// encoding visible to any job this thread submits afterwards.
    ///
    /// # Panics
    ///
    /// Panics if more encodings than workers are supplied.
    pub fn store_encodings(&self, ctx_id: u64, encodings: Vec<Tensor<F25>>) {
        assert!(encodings.len() <= self.senders.len(), "more encodings than workers");
        for (i, e) in encodings.into_iter().enumerate() {
            self.send(i, WorkerMsg::Store { ctx_id, encoding: e });
        }
    }

    /// Releases the stored encodings of a retired virtual-batch context
    /// on every worker.
    pub fn release_context(&self, ctx_id: u64) {
        for i in 0..self.senders.len() {
            self.send(i, WorkerMsg::Release { ctx_id });
        }
    }

    fn shutdown(&mut self) -> Vec<GpuWorker> {
        self.senders.clear(); // closing every inbox ends the worker loops
        std::mem::take(&mut self.handles)
            .into_iter()
            .map(|h| h.join().expect("gpu worker thread panicked"))
            .collect()
    }

    /// Stops the worker threads and reassembles the fleet, with all the
    /// state the workers accumulated (counters, observations, stored
    /// encodings, behaviours).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn join(mut self) -> GpuCluster {
        let workers = self.shutdown();
        let parallel = self.parallel;
        GpuCluster::from_workers(workers, parallel)
    }
}

impl Drop for GpuDispatcher {
    fn drop(&mut self) {
        // Idempotent with `join` (which empties the handle list first).
        let _ = self.shutdown();
    }
}

/// A cloneable [`GpuExec`] backend over a shared dispatcher. Each
/// pipelined TEE lane holds one client; all clients feed the same
/// persistent worker threads.
#[derive(Debug, Clone)]
pub struct DispatchClient {
    inner: Arc<GpuDispatcher>,
}

impl DispatchClient {
    /// Wraps a shared dispatcher.
    pub fn new(inner: Arc<GpuDispatcher>) -> Self {
        Self { inner }
    }

    /// The underlying dispatcher.
    pub fn dispatcher(&self) -> &Arc<GpuDispatcher> {
        &self.inner
    }
}

impl GpuExec for DispatchClient {
    fn num_workers(&self) -> usize {
        self.inner.len()
    }

    fn execute(&mut self, tag: u64, jobs: &[LinearJob]) -> Vec<JobOutput> {
        let ticket = self.inner.submit(BatchTag(tag), jobs.to_vec());
        self.inner.complete(ticket)
    }

    fn execute_on(&mut self, id: WorkerId, job: &LinearJob) -> JobOutput {
        self.inner.complete_one(self.inner.submit_on(id, job.clone()))
    }

    fn store_encodings(&mut self, ctx_id: u64, encodings: Vec<Tensor<F25>>) {
        self.inner.store_encodings(ctx_id, encodings);
    }

    fn release_contexts(&mut self, ctx_ids: &[u64]) {
        for &c in ctx_ids {
            self.inner.release_context(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use std::sync::Arc as StdArc;

    fn dense_job(scale: u64) -> LinearJob {
        LinearJob::DenseForward {
            weights: StdArc::new(Tensor::from_fn(&[2, 3], |i| F25::new(i as u64 + 1))),
            x: Tensor::from_fn(&[1, 3], move |i| F25::new((i as u64 + 1) * scale)),
        }
    }

    #[test]
    fn submit_complete_matches_blocking_execute() {
        let jobs: Vec<_> = (1..=3).map(dense_job).collect();
        let mut blocking = GpuCluster::honest(3, 1);
        let expect = blocking.execute(&jobs);
        let d = GpuCluster::honest(3, 1).into_dispatcher(4);
        let outs = d.complete(d.submit(BatchTag(1), jobs));
        assert_eq!(outs, expect);
    }

    #[test]
    fn interleaved_batches_keep_worker_order() {
        let d = GpuCluster::honest(2, 2).into_dispatcher(4);
        let t1 = d.submit(BatchTag(1), (1..=2).map(dense_job).collect());
        let t2 = d.submit(BatchTag(2), (3..=4).map(dense_job).collect());
        let o2 = d.complete(t2);
        let o1 = d.complete(t1);
        assert_eq!(o1[0], dense_job(1).execute());
        assert_eq!(o1[1], dense_job(2).execute());
        assert_eq!(o2[0], dense_job(3).execute());
        assert_eq!(o2[1], dense_job(4).execute());
    }

    #[test]
    fn store_then_stored_job_sees_encoding() {
        let d = GpuCluster::honest(1, 3).into_dispatcher(4);
        let enc = Tensor::from_fn(&[1, 3], |i| F25::new(i as u64 + 2));
        d.store_encodings(77, vec![enc.clone()]);
        let delta = StdArc::new(Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1)));
        let job = LinearJob::DenseWeightGradStored {
            delta_batch: delta.clone(),
            beta: vec![F25::ONE],
            layer_id: 77,
        };
        let out = d.complete_one(d.submit_on(WorkerId(0), job));
        let expect = LinearJob::DenseWeightGrad {
            delta: (*delta).clone(),
            x: enc,
        }
        .execute();
        assert_eq!(out, expect);
    }

    #[test]
    fn release_context_drops_encoding() {
        let mut cluster = GpuCluster::honest(1, 4);
        let d = cluster.clone().into_dispatcher(4);
        d.store_encodings(5, vec![Tensor::from_fn(&[1, 2], |i| F25::new(i as u64))]);
        d.release_context(5);
        cluster = d.join();
        assert!(cluster.worker(WorkerId(0)).stored_encoding(5).is_none());
        // But the observation (the adversary's view) survives.
        assert_eq!(cluster.worker(WorkerId(0)).observations().len(), 1);
    }

    #[test]
    fn join_preserves_worker_state() {
        let d = GpuCluster::with_behaviors(&[Behavior::Honest, Behavior::Scale(2)], 5)
            .into_dispatcher(4);
        let _ = d.complete(d.submit(BatchTag(0), (1..=2).map(dense_job).collect()));
        let cluster = d.join();
        assert_eq!(cluster.len(), 2);
        assert_eq!(cluster.worker(WorkerId(0)).jobs_executed(), 1);
        assert_eq!(cluster.worker(WorkerId(1)).behavior(), Behavior::Scale(2));
    }

    #[test]
    fn concurrent_submitters_share_the_fleet() {
        let d = StdArc::new(GpuCluster::honest(2, 6).into_dispatcher(2));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let d = d.clone();
                s.spawn(move || {
                    for r in 0..8u64 {
                        let jobs: Vec<_> = (1..=2).map(|i| dense_job(i + t + r)).collect();
                        let expect: Vec<_> = jobs.iter().map(LinearJob::execute).collect();
                        let outs = d.complete(d.submit(BatchTag(t), jobs));
                        assert_eq!(outs, expect);
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "more jobs")]
    fn too_many_jobs_panics() {
        let d = GpuCluster::honest(1, 7).into_dispatcher(2);
        let _ = d.submit(BatchTag(0), (1..=2).map(dense_job).collect());
    }
}
