//! Asynchronous job dispatch over persistent per-worker OS threads.
//!
//! This is the primary execution interface of the fleet (the blocking
//! [`GpuCluster::execute`](crate::GpuCluster::execute) remains as the
//! sequential reference): a [`GpuDispatcher`] owns one long-lived OS
//! thread per worker, each fed by a bounded channel. Callers
//! [`submit`](GpuDispatcher::submit) a virtual batch of jobs and get a
//! [`Ticket`] back immediately; [`complete`](GpuDispatcher::complete)
//! blocks until the results are in. Between the two calls the submitting
//! (TEE) thread is free to encode the next virtual batch or decode the
//! previous one — the §7.1 overlap, for real.
//!
//! Guarantees:
//!
//! * **Per-worker FIFO.** Messages to one worker are processed in send
//!   order, so a stored encoding is always visible to the `*Stored` jobs
//!   submitted after it by the same thread.
//! * **Bounded queues.** Each worker's channel holds at most `depth`
//!   messages; a flooded fleet backpressures encoders instead of
//!   buffering unboundedly.
//! * **State fidelity.** Workers keep their full state (behaviour, RNG,
//!   stored encodings, observations, counters) across the dispatcher's
//!   lifetime; [`join`](GpuDispatcher::join) reassembles the original
//!   [`GpuCluster`] with everything the workers accumulated.
//! * **Worker loss is a value, not a panic.** A worker whose thread
//!   exited (crash behaviour, panic) yields
//!   [`GpuError::WorkerLost`] from `submit`/`complete`; a worker that
//!   blows the optional reply deadline yields [`GpuError::Timeout`].
//!   `join` replaces lost workers with fresh respawns and reports their
//!   ids. Nothing in this module aborts the process over a dead worker.

use crate::cluster::GpuCluster;
use crate::error::GpuError;
use crate::exec::{GpuExec, WorkerResult};
use crate::job::{JobOutput, LinearJob};
use crate::worker::{GpuWorker, WorkerId};
use dk_field::F25;
use dk_linalg::Tensor;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Identifies the virtual batch a submission belongs to (tracing and
/// bookkeeping; uniqueness is the submitter's concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchTag(pub u64);

/// What flows to a worker thread.
enum WorkerMsg {
    Run { job: Box<LinearJob>, reply: mpsc::Sender<JobOutput> },
    Store { ctx_id: u64, encoding: Tensor<F25> },
    Release { ctx_id: u64 },
}

/// One job's pending reply: either a live receiver or the fault that
/// already claimed the slot at submission time.
#[derive(Debug)]
struct ReplySlot {
    worker: WorkerId,
    rx: Result<mpsc::Receiver<JobOutput>, GpuError>,
}

/// A pending virtual-batch submission: redeem with
/// [`GpuDispatcher::complete`].
#[derive(Debug)]
pub struct Ticket {
    tag: BatchTag,
    slots: Vec<ReplySlot>,
}

impl Ticket {
    /// The tag this submission was made under.
    pub fn tag(&self) -> BatchTag {
        self.tag
    }

    /// Number of jobs in flight under this ticket.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the ticket covers no jobs.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A pending single-job submission: redeem with
/// [`GpuDispatcher::complete_one`].
#[derive(Debug)]
pub struct JobTicket {
    slot: ReplySlot,
}

/// What it takes to respawn a lost worker at `join` time: identity and
/// configuration survive a crash, accumulated state (RNG, encodings,
/// observations, counters) does not — exactly like replacing a dead GPU.
#[derive(Debug, Clone, Copy)]
struct WorkerSpec {
    id: WorkerId,
    behavior: crate::Behavior,
    latency: Option<crate::LatencyModel>,
}

/// Persistent-thread asynchronous dispatcher over a worker fleet (see
/// module docs). Created with
/// [`GpuCluster::into_dispatcher`](crate::GpuCluster::into_dispatcher).
///
/// All methods take `&self`: the dispatcher is shared between the TEE
/// stage threads of a pipelined engine (typically behind an [`Arc`]).
pub struct GpuDispatcher {
    senders: Vec<mpsc::SyncSender<WorkerMsg>>,
    handles: Vec<JoinHandle<GpuWorker>>,
    specs: Vec<WorkerSpec>,
    parallel: bool,
    reply_timeout: Option<Duration>,
    /// Jobs submitted and not yet redeemed (submit-side view, so a
    /// dying worker cannot leak depth — its faulted slots still get
    /// redeemed). Recording is a no-op while `dk_obs` is disabled.
    queue_depth: dk_obs::Gauge,
    jobs_total: dk_obs::Counter,
}

impl std::fmt::Debug for GpuDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuDispatcher")
            .field("workers", &self.senders.len())
            .field("parallel", &self.parallel)
            .field("reply_timeout", &self.reply_timeout)
            .finish()
    }
}

fn worker_main(
    mut worker: GpuWorker,
    rx: mpsc::Receiver<WorkerMsg>,
    health: dk_obs::WorkerHandle,
) -> GpuWorker {
    for msg in rx.iter() {
        match msg {
            WorkerMsg::Run { job, reply } => {
                // A crash-behaviour worker whose budget is spent dies
                // here: the thread exits, the inbox closes, queued and
                // future messages fail over to typed worker-lost errors
                // at the submitting side.
                if worker.crash_pending() {
                    return worker;
                }
                let t0 = dk_obs::enabled().then(std::time::Instant::now);
                let out = worker.execute(&job);
                if let Some(t0) = t0 {
                    health.job_done(t0.elapsed().as_nanos() as u64);
                }
                // A send error means the submitter gave up on the
                // ticket; the job still ran (state advanced), which
                // mirrors a real accelerator that cannot be recalled.
                let _ = reply.send(out);
            }
            WorkerMsg::Store { ctx_id, encoding } => worker.store_encoding(ctx_id, encoding),
            WorkerMsg::Release { ctx_id } => worker.remove_encoding(ctx_id),
        }
    }
    worker
}

impl GpuDispatcher {
    /// Spawns one thread per worker with a `depth`-bounded inbox.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or thread spawning fails.
    pub(crate) fn spawn(workers: Vec<GpuWorker>, depth: usize, parallel: bool) -> Self {
        assert!(depth > 0, "worker queues need capacity");
        let mut senders = Vec::with_capacity(workers.len());
        let mut handles = Vec::with_capacity(workers.len());
        let mut specs = Vec::with_capacity(workers.len());
        for w in workers {
            specs.push(WorkerSpec { id: w.id(), behavior: w.behavior(), latency: w.latency() });
            let (tx, rx) = mpsc::sync_channel(depth);
            let name = format!("dk-gpu-{}", w.id());
            let health = dk_obs::fleet().worker(w.id().0);
            handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_main(w, rx, health))
                    .expect("spawn gpu worker thread"),
            );
            senders.push(tx);
        }
        Self {
            senders,
            handles,
            specs,
            parallel,
            reply_timeout: None,
            queue_depth: dk_obs::global().gauge("dk_dispatch_queue_depth"),
            jobs_total: dk_obs::global().counter("dk_dispatch_jobs_total"),
        }
    }

    /// Sets (or clears) a per-job reply deadline. When set, `complete`
    /// waits at most this long for each outstanding job; a straggler
    /// surfaces as [`GpuError::Timeout`] and the session treats it like
    /// a lost worker (quarantine + TEE repair). Configure before sharing
    /// the dispatcher.
    pub fn with_reply_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    fn send(&self, w: usize, msg: WorkerMsg) -> Result<(), GpuError> {
        self.senders[w]
            .send(msg)
            .map_err(|_| GpuError::lost(WorkerId(w), "worker thread terminated (inbox closed)"))
    }

    /// Submits `jobs[i]` to worker `i` and returns immediately. A dead
    /// worker does not fail the submission: its slot carries the fault
    /// and [`GpuDispatcher::complete`] reports it in worker order.
    ///
    /// # Errors
    ///
    /// [`GpuError::Oversubscribed`] if more jobs than workers are
    /// supplied.
    pub fn submit(&self, tag: BatchTag, jobs: Vec<LinearJob>) -> Result<Ticket, GpuError> {
        if jobs.len() > self.senders.len() {
            return Err(GpuError::Oversubscribed {
                jobs: jobs.len(),
                workers: self.senders.len(),
            });
        }
        let mut slots = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            let rx = self
                .send(i, WorkerMsg::Run { job: Box::new(job), reply: tx })
                .map(|()| rx);
            self.queue_depth.inc();
            self.jobs_total.inc();
            slots.push(ReplySlot { worker: WorkerId(i), rx });
        }
        Ok(Ticket { tag, slots })
    }

    fn redeem(&self, slot: ReplySlot) -> WorkerResult {
        // Balanced against the `inc` in submit/submit_on: every slot —
        // including faulted ones — passes through here exactly once.
        self.queue_depth.dec();
        let ReplySlot { worker, rx } = slot;
        let rx = rx?;
        match self.reply_timeout {
            None => rx
                .recv()
                .map_err(|_| GpuError::lost(worker, "worker thread dropped the job")),
            Some(t) => rx.recv_timeout(t).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    GpuError::Timeout { worker, waited_ms: t.as_millis() as u64 }
                }
                mpsc::RecvTimeoutError::Disconnected => {
                    GpuError::lost(worker, "worker thread dropped the job")
                }
            }),
        }
    }

    /// Blocks until every job under the ticket finished (or faulted);
    /// per-worker outcomes are in worker order. A lost or timed-out
    /// worker claims only its own slot — the other workers' outputs are
    /// still returned, which is what lets the TEE repair around it.
    pub fn complete(&self, ticket: Ticket) -> Vec<WorkerResult> {
        ticket.slots.into_iter().map(|slot| self.redeem(slot)).collect()
    }

    /// Submits one job to a specific worker.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn submit_on(&self, id: WorkerId, job: LinearJob) -> JobTicket {
        let (tx, rx) = mpsc::channel();
        let rx = self
            .send(id.0, WorkerMsg::Run { job: Box::new(job), reply: tx })
            .map(|()| rx);
        self.queue_depth.inc();
        self.jobs_total.inc();
        JobTicket { slot: ReplySlot { worker: id, rx } }
    }

    /// Blocks until a single-job submission finished (or faulted).
    pub fn complete_one(&self, ticket: JobTicket) -> WorkerResult {
        self.redeem(ticket.slot)
    }

    /// Stores per-worker forward encodings under a context id (worker
    /// `i` receives `encodings[i]`). Per-worker FIFO ordering makes the
    /// encoding visible to any job this thread submits afterwards.
    /// Best-effort: a dead worker's store is dropped — its jobs fail
    /// with a typed error and the session repairs around it.
    ///
    /// # Panics
    ///
    /// Panics if more encodings than workers are supplied.
    pub fn store_encodings(&self, ctx_id: u64, encodings: Vec<Tensor<F25>>) {
        assert!(encodings.len() <= self.senders.len(), "more encodings than workers");
        for (i, e) in encodings.into_iter().enumerate() {
            let _ = self.send(i, WorkerMsg::Store { ctx_id, encoding: e });
        }
    }

    /// Releases the stored encodings of a retired virtual-batch context
    /// on every worker (best-effort on dead workers).
    pub fn release_context(&self, ctx_id: u64) {
        for i in 0..self.senders.len() {
            let _ = self.send(i, WorkerMsg::Release { ctx_id });
        }
    }

    fn shutdown(&mut self) -> (Vec<GpuWorker>, Vec<WorkerId>) {
        self.senders.clear(); // closing every inbox ends the worker loops
        let mut lost = Vec::new();
        let workers = std::mem::take(&mut self.handles)
            .into_iter()
            .zip(&self.specs)
            .map(|(h, spec)| {
                h.join().unwrap_or_else(|_| {
                    // The thread panicked mid-job (e.g. a protocol
                    // violation inside the worker). Report the loss and
                    // respawn a fresh worker under the same identity and
                    // configuration — accumulated state died with the
                    // thread, as it would with a real device.
                    lost.push(spec.id);
                    let mut w = GpuWorker::new(
                        spec.id,
                        spec.behavior,
                        0xDEAD_0000 ^ spec.id.0 as u64,
                    );
                    w.set_latency(spec.latency);
                    w
                })
            })
            .collect();
        (workers, lost)
    }

    /// Stops the worker threads and reassembles the fleet, with all the
    /// state the workers accumulated (counters, observations, stored
    /// encodings, behaviours). Workers whose thread panicked are
    /// respawned fresh (same id, behaviour and latency; state lost) and
    /// reported in the second return value instead of panicking the
    /// caller.
    pub fn join(mut self) -> (GpuCluster, Vec<WorkerId>) {
        let (workers, lost) = self.shutdown();
        let parallel = self.parallel;
        (GpuCluster::from_workers(workers, parallel), lost)
    }
}

impl Drop for GpuDispatcher {
    fn drop(&mut self) {
        // Idempotent with `join` (which empties the handle list first).
        let _ = self.shutdown();
    }
}

/// A cloneable [`GpuExec`] backend over a shared dispatcher. Each
/// pipelined TEE lane holds one client; all clients feed the same
/// persistent worker threads.
#[derive(Debug, Clone)]
pub struct DispatchClient {
    inner: Arc<GpuDispatcher>,
}

impl DispatchClient {
    /// Wraps a shared dispatcher.
    pub fn new(inner: Arc<GpuDispatcher>) -> Self {
        Self { inner }
    }

    /// The underlying dispatcher.
    pub fn dispatcher(&self) -> &Arc<GpuDispatcher> {
        &self.inner
    }
}

impl GpuExec for DispatchClient {
    fn num_workers(&self) -> usize {
        self.inner.len()
    }

    fn execute(&mut self, tag: u64, jobs: &[LinearJob]) -> Result<Vec<WorkerResult>, GpuError> {
        let ticket = self.inner.submit(BatchTag(tag), jobs.to_vec())?;
        Ok(self.inner.complete(ticket))
    }

    fn execute_on(&mut self, id: WorkerId, job: &LinearJob) -> WorkerResult {
        self.inner.complete_one(self.inner.submit_on(id, job.clone()))
    }

    fn store_encodings(&mut self, ctx_id: u64, encodings: Vec<Tensor<F25>>) {
        self.inner.store_encodings(ctx_id, encodings);
    }

    fn release_contexts(&mut self, ctx_ids: &[u64]) {
        for &c in ctx_ids {
            self.inner.release_context(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use std::sync::Arc as StdArc;

    fn dense_job(scale: u64) -> LinearJob {
        LinearJob::DenseForward {
            weights: StdArc::new(Tensor::from_fn(&[2, 3], |i| F25::new(i as u64 + 1))),
            x: Tensor::from_fn(&[1, 3], move |i| F25::new((i as u64 + 1) * scale)),
        }
    }

    fn oks(results: Vec<WorkerResult>) -> Vec<JobOutput> {
        results.into_iter().map(|r| r.expect("worker fault")).collect()
    }

    #[test]
    fn submit_complete_matches_blocking_execute() {
        let jobs: Vec<_> = (1..=3).map(dense_job).collect();
        let mut blocking = GpuCluster::honest(3, 1);
        let expect = blocking.execute(&jobs);
        let d = GpuCluster::honest(3, 1).into_dispatcher(4);
        let outs = oks(d.complete(d.submit(BatchTag(1), jobs).unwrap()));
        assert_eq!(outs, expect);
    }

    #[test]
    fn interleaved_batches_keep_worker_order() {
        let d = GpuCluster::honest(2, 2).into_dispatcher(4);
        let t1 = d.submit(BatchTag(1), (1..=2).map(dense_job).collect()).unwrap();
        let t2 = d.submit(BatchTag(2), (3..=4).map(dense_job).collect()).unwrap();
        let o2 = oks(d.complete(t2));
        let o1 = oks(d.complete(t1));
        assert_eq!(o1[0], dense_job(1).execute());
        assert_eq!(o1[1], dense_job(2).execute());
        assert_eq!(o2[0], dense_job(3).execute());
        assert_eq!(o2[1], dense_job(4).execute());
    }

    #[test]
    fn store_then_stored_job_sees_encoding() {
        let d = GpuCluster::honest(1, 3).into_dispatcher(4);
        let enc = Tensor::from_fn(&[1, 3], |i| F25::new(i as u64 + 2));
        d.store_encodings(77, vec![enc.clone()]);
        let delta = StdArc::new(Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 1)));
        let job = LinearJob::DenseWeightGradStored {
            delta_batch: delta.clone(),
            beta: vec![F25::ONE],
            layer_id: 77,
        };
        let out = d.complete_one(d.submit_on(WorkerId(0), job)).unwrap();
        let expect = LinearJob::DenseWeightGrad {
            delta: (*delta).clone(),
            x: enc,
        }
        .execute();
        assert_eq!(out, expect);
    }

    #[test]
    fn release_context_drops_encoding() {
        let mut cluster = GpuCluster::honest(1, 4);
        let d = cluster.clone().into_dispatcher(4);
        d.store_encodings(5, vec![Tensor::from_fn(&[1, 2], |i| F25::new(i as u64))]);
        d.release_context(5);
        cluster = d.join().0;
        assert!(cluster.worker(WorkerId(0)).stored_encoding(5).is_none());
        // But the observation (the adversary's view) survives.
        assert_eq!(cluster.worker(WorkerId(0)).observations().len(), 1);
    }

    #[test]
    fn join_preserves_worker_state() {
        let d = GpuCluster::with_behaviors(&[Behavior::Honest, Behavior::Scale(2)], 5)
            .into_dispatcher(4);
        let _ = d.complete(d.submit(BatchTag(0), (1..=2).map(dense_job).collect()).unwrap());
        let (cluster, lost) = d.join();
        assert!(lost.is_empty());
        assert_eq!(cluster.len(), 2);
        assert_eq!(cluster.worker(WorkerId(0)).jobs_executed(), 1);
        assert_eq!(cluster.worker(WorkerId(1)).behavior(), Behavior::Scale(2));
    }

    #[test]
    fn concurrent_submitters_share_the_fleet() {
        let d = StdArc::new(GpuCluster::honest(2, 6).into_dispatcher(2));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let d = d.clone();
                s.spawn(move || {
                    for r in 0..8u64 {
                        let jobs: Vec<_> = (1..=2).map(|i| dense_job(i + t + r)).collect();
                        let expect: Vec<_> = jobs.iter().map(LinearJob::execute).collect();
                        let outs = oks(d.complete(d.submit(BatchTag(t), jobs).unwrap()));
                        assert_eq!(outs, expect);
                    }
                });
            }
        });
    }

    #[test]
    fn too_many_jobs_is_a_typed_error() {
        let d = GpuCluster::honest(1, 7).into_dispatcher(2);
        let err = d.submit(BatchTag(0), (1..=2).map(dense_job).collect()).unwrap_err();
        assert_eq!(err, GpuError::Oversubscribed { jobs: 2, workers: 1 });
    }

    #[test]
    fn crashed_worker_surfaces_as_worker_lost_not_panic() {
        let d = GpuCluster::with_behaviors(
            &[Behavior::Honest, Behavior::Crash { after: 0 }, Behavior::Honest],
            8,
        )
        .into_dispatcher(4);
        let results = d.complete(d.submit(BatchTag(0), (1..=3).map(dense_job).collect()).unwrap());
        assert_eq!(results[0], Ok(dense_job(1).execute()));
        assert!(matches!(results[1], Err(GpuError::WorkerLost { worker: WorkerId(1), .. })));
        assert_eq!(results[2], Ok(dense_job(3).execute()));
        // Subsequent submissions keep reporting the loss (dead inbox or
        // dropped reply, depending on the race) — never a panic.
        let again = d.complete(d.submit(BatchTag(1), (1..=3).map(dense_job).collect()).unwrap());
        assert!(again[1].is_err());
        assert_eq!(again[0], Ok(dense_job(1).execute()));
        // Store/release to the dead worker are silently dropped.
        d.store_encodings(9, vec![Tensor::from_fn(&[1, 2], |i| F25::new(i as u64)); 3]);
        d.release_context(9);
        let (cluster, lost) = d.join();
        // The crash was a clean simulated exit, not a thread panic.
        assert!(lost.is_empty());
        assert_eq!(cluster.len(), 3);
    }

    #[test]
    fn crash_after_budget_executes_honestly_first() {
        let d = GpuCluster::with_behaviors(&[Behavior::Crash { after: 2 }], 9).into_dispatcher(4);
        for round in 1..=2u64 {
            let out = d.complete_one(d.submit_on(WorkerId(0), dense_job(round))).unwrap();
            assert_eq!(out, dense_job(round).execute());
        }
        let err = d.complete_one(d.submit_on(WorkerId(0), dense_job(3))).unwrap_err();
        assert!(matches!(err, GpuError::WorkerLost { worker: WorkerId(0), .. }));
    }

    #[test]
    fn reply_timeout_surfaces_straggler() {
        let mut cluster = GpuCluster::honest(2, 10);
        cluster
            .worker_mut(WorkerId(1))
            .set_latency(Some(crate::LatencyModel { base_ns: 200_000_000, ns_per_kmac: 0 }));
        let d = cluster.into_dispatcher(4).with_reply_timeout(Some(Duration::from_millis(25)));
        let results = d.complete(d.submit(BatchTag(0), (1..=2).map(dense_job).collect()).unwrap());
        assert_eq!(results[0], Ok(dense_job(1).execute()));
        assert!(matches!(results[1], Err(GpuError::Timeout { worker: WorkerId(1), .. })));
    }
}
