//! A single simulated GPU worker.

use crate::behavior::Behavior;
use crate::job::{JobOutput, LinearJob};
use dk_field::{F25, FieldRng};
use dk_linalg::{Tensor, Workspace};
use std::collections::HashMap;

/// Worker identity within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub usize);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Cap on the retained adversary-view record. The privacy audits
/// consume a few dozen observations; an unbounded log would grow for
/// the whole lifetime of a training run. Beyond the cap the record
/// wraps and overwrites the oldest entries — the retained view is a
/// window of recent traffic, which is exactly what the chi-square
/// uniformity audit samples. The backing `Vec` is reserved up front so
/// the record never reallocates, keeping warm steps allocation-steady.
const OBSERVATION_CAP: usize = 4096;

/// A simulated accelerator.
///
/// Besides executing jobs, the worker does two things a real deployment
/// does:
///
/// * it **stores the forward encodings** it receives, keyed by layer, so
///   the backward pass can reuse them without re-transmission (§6 of the
///   paper: "our current implementation of DarKnight stores these
///   encoded inputs within the GPU memory");
/// * it **records every masked vector it observes** (up to
///   [`OBSERVATION_CAP`], then a wrapping window), which is exactly
///   the adversary's view — the collusion analyzer consumes this.
#[derive(Debug, Clone)]
pub struct GpuWorker {
    id: WorkerId,
    behavior: Behavior,
    rng: FieldRng,
    stored_encodings: HashMap<u64, Tensor<F25>>,
    observations: Vec<Vec<F25>>,
    /// Ring cursor into `observations` once the record is at capacity.
    obs_next: usize,
    jobs_executed: u64,
    macs_executed: u64,
    latency: Option<crate::LatencyModel>,
    /// Kernel scratch pool (im2col columns, packed panels): one per
    /// worker, reused across the job stream. Cloned/forked workers
    /// start with a fresh pool — scratch carries no state.
    ws: Workspace,
}

impl GpuWorker {
    /// Creates a worker with the given behaviour.
    pub fn new(id: WorkerId, behavior: Behavior, seed: u64) -> Self {
        Self {
            id,
            behavior,
            rng: FieldRng::seed_from(seed ^ (id.0 as u64).wrapping_mul(0x9E37_79B9)),
            stored_encodings: HashMap::new(),
            observations: Vec::with_capacity(OBSERVATION_CAP),
            obs_next: 0,
            jobs_executed: 0,
            macs_executed: 0,
            latency: None,
            ws: Workspace::new(),
        }
    }

    /// Attaches (or clears) a modeled execution-latency profile. When
    /// set, [`GpuWorker::execute`] sleeps for the modeled accelerator
    /// time after computing the (host-CPU-simulated) result, so
    /// wall-clock measurements reflect device latency rather than the
    /// speed of the simulation itself.
    pub fn set_latency(&mut self, latency: Option<crate::LatencyModel>) {
        self.latency = latency;
    }

    /// The modeled latency profile, if any.
    pub fn latency(&self) -> Option<crate::LatencyModel> {
        self.latency
    }

    /// The worker id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The configured behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Reconfigures the behaviour (tests flip workers malicious
    /// mid-session: the paper's *dynamic* adversary).
    pub fn set_behavior(&mut self, b: Behavior) {
        self.behavior = b;
    }

    /// Stores a forward encoding for later backward reuse and records it
    /// as an observation.
    pub fn store_encoding(&mut self, layer_id: u64, encoding: Tensor<F25>) {
        if self.observations.len() < OBSERVATION_CAP {
            self.observations.push(encoding.as_slice().to_vec());
        } else {
            // At capacity: overwrite the oldest slot in place, reusing
            // its allocation when the new observation fits.
            let slot = &mut self.observations[self.obs_next];
            slot.clear();
            slot.extend_from_slice(encoding.as_slice());
            self.obs_next = (self.obs_next + 1) % OBSERVATION_CAP;
        }
        self.stored_encodings.insert(layer_id, encoding);
    }

    /// Retrieves the stored encoding for a layer.
    pub fn stored_encoding(&self, layer_id: u64) -> Option<&Tensor<F25>> {
        self.stored_encodings.get(&layer_id)
    }

    /// Clears stored encodings (between virtual batches).
    pub fn clear_encodings(&mut self) {
        self.stored_encodings.clear();
    }

    /// Removes one stored encoding by context id. Pipelined execution
    /// keys contexts per `(virtual batch, layer)` and releases them
    /// individually, since several batches share the worker at once.
    pub fn remove_encoding(&mut self, ctx_id: u64) {
        self.stored_encodings.remove(&ctx_id);
    }

    /// True once a [`Behavior::Crash`] worker has spent its honest-job
    /// budget: the execution backends consult this before running a job
    /// and simulate the worker's death instead (thread exit / typed
    /// [`crate::GpuError::WorkerLost`]).
    pub fn crash_pending(&self) -> bool {
        matches!(self.behavior, Behavior::Crash { after } if self.jobs_executed >= after)
    }

    /// True if this worker holds every stored encoding the job needs —
    /// i.e. [`GpuWorker::execute`] would not panic on it. Remote worker
    /// processes check this up front so a replay gap becomes a typed
    /// wire error instead of a process abort.
    pub fn can_execute(&self, job: &LinearJob) -> bool {
        match job {
            LinearJob::ConvWeightGradStored { layer_id, .. }
            | LinearJob::DenseWeightGradStored { layer_id, .. } => {
                self.stored_encodings.contains_key(layer_id)
            }
            _ => true,
        }
    }

    /// Executes a job, applying the adversarial behaviour to the result.
    ///
    /// # Panics
    ///
    /// Panics if a `*Stored` job references a layer this worker has no
    /// stored encoding for (a protocol violation by the dispatcher).
    pub fn execute(&mut self, job: &LinearJob) -> JobOutput {
        self.jobs_executed += 1;
        self.macs_executed += job.macs();
        // Record what the job reveals: the masked input (forward) or the
        // stored encoding is already recorded; backward-data inputs are
        // deltas, which the threat model treats as non-sensitive.
        let honest = match (self.behavior, job) {
            (Behavior::StaleInput, LinearJob::ConvForward { weights, x, shape }) => {
                let zero = Tensor::zeros(x.shape());
                LinearJob::ConvForward { weights: weights.clone(), x: zero, shape: *shape }
                    .execute_ws(&mut self.ws)
            }
            (_, LinearJob::ConvWeightGradStored { delta_batch, beta, layer_id, shape }) => {
                let x = self
                    .stored_encodings
                    .get(layer_id)
                    .unwrap_or_else(|| panic!("{} has no stored encoding for layer {layer_id}", self.id))
                    .clone();
                let delta = crate::job::beta_combine(delta_batch, beta);
                LinearJob::ConvWeightGrad { delta, x, shape: *shape }.execute_ws(&mut self.ws)
            }
            (_, LinearJob::DenseWeightGradStored { delta_batch, beta, layer_id }) => {
                let x = self
                    .stored_encodings
                    .get(layer_id)
                    .unwrap_or_else(|| panic!("{} has no stored encoding for layer {layer_id}", self.id))
                    .clone();
                let delta = crate::job::beta_combine(delta_batch, beta);
                LinearJob::DenseWeightGrad { delta, x }.execute_ws(&mut self.ws)
            }
            _ => job.execute_ws(&mut self.ws),
        };
        if let Some(l) = self.latency {
            std::thread::sleep(l.delay(job.macs()));
        }
        self.behavior.corrupt(honest, &mut self.rng)
    }

    /// Returns an output tensor this worker produced back to its
    /// scratch pool, so the next job's output reuses the buffer instead
    /// of allocating. Called by the TEE side once a batch is decoded.
    pub fn recycle_output(&mut self, t: Tensor<F25>) {
        self.ws.give_tensor(t);
    }

    /// Everything this worker has observed (the adversary's view).
    pub fn observations(&self) -> &[Vec<F25>] {
        &self.observations
    }

    /// Number of jobs executed.
    pub fn jobs_executed(&self) -> u64 {
        self.jobs_executed
    }

    /// Total MACs executed (perf accounting).
    pub fn macs_executed(&self) -> u64 {
        self.macs_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_linalg::Conv2dShape;
    use std::sync::Arc;

    fn conv_job() -> LinearJob {
        let shape = Conv2dShape::simple(1, 2, 3, 1, 1);
        LinearJob::ConvForward {
            weights: Arc::new(Tensor::from_fn(&shape.weight_shape(), |i| F25::new(i as u64))),
            x: Tensor::from_fn(&[1, 1, 4, 4], |i| F25::new(i as u64)),
            shape,
        }
    }

    #[test]
    fn honest_worker_matches_job() {
        let mut w = GpuWorker::new(WorkerId(0), Behavior::Honest, 1);
        let job = conv_job();
        assert_eq!(w.execute(&job), job.execute());
        assert_eq!(w.jobs_executed(), 1);
        assert!(w.macs_executed() > 0);
    }

    #[test]
    fn malicious_worker_corrupts() {
        let mut w = GpuWorker::new(WorkerId(1), Behavior::AdditiveNoise, 2);
        let job = conv_job();
        assert_ne!(w.execute(&job), job.execute());
    }

    #[test]
    fn stale_input_gives_zero_conv() {
        let mut w = GpuWorker::new(WorkerId(2), Behavior::StaleInput, 3);
        let job = conv_job();
        let out = w.execute(&job);
        assert!(out.as_slice().iter().all(|v| v.is_zero()));
    }

    #[test]
    fn encoding_storage_round_trip() {
        let mut w = GpuWorker::new(WorkerId(0), Behavior::Honest, 4);
        let enc = Tensor::from_fn(&[1, 2, 2, 2], |i| F25::new(i as u64 * 11));
        w.store_encoding(5, enc.clone());
        assert_eq!(w.stored_encoding(5), Some(&enc));
        assert!(w.stored_encoding(6).is_none());
        w.clear_encodings();
        assert!(w.stored_encoding(5).is_none());
        // Observation survives clearing (the adversary remembers).
        assert_eq!(w.observations().len(), 1);
    }

    #[test]
    fn behavior_can_change_dynamically() {
        let mut w = GpuWorker::new(WorkerId(0), Behavior::Honest, 5);
        let job = conv_job();
        assert_eq!(w.execute(&job), job.execute());
        w.set_behavior(Behavior::ZeroOutput);
        assert!(w.execute(&job).as_slice().iter().all(|v| v.is_zero()));
    }
}
