//! The execution-backend abstraction the TEE-side protocol is generic
//! over.
//!
//! `dk-core`'s session implements DarKnight's §3.1 flow once, against
//! this trait; the backend decides *how* the linear jobs reach the
//! accelerators:
//!
//! * [`crate::GpuCluster`] — the blocking reference backend: jobs run to
//!   completion inside `execute` (serially, or on one ephemeral thread
//!   per worker). One virtual batch is in flight at a time.
//! * [`crate::DispatchClient`] — the pipelined backend: jobs are
//!   submitted to a shared [`crate::GpuDispatcher`] whose persistent
//!   per-worker threads serve *several* virtual batches concurrently.
//! * [`crate::TcpFleet`] — the wire backend: jobs travel as framed
//!   messages to remote worker processes over TCP.
//!
//! Faults are part of the contract, not panics. `execute` reports
//! per-worker outcomes ([`WorkerResult`]) so the session can route
//! around one dead worker while using the others' answers — the same
//! localize-and-repair flow that handles a tampering worker. Whole-call
//! failures (oversubscription) surface as the outer [`GpuError`].
//!
//! Context ids are the protocol's handle for stored forward encodings
//! (§6 backward reuse). Sequential execution could key them by layer
//! alone, but pipelined execution has many batches resident on each
//! worker at once, so ids are globally unique per `(virtual batch,
//! layer)` and released per batch rather than wholesale.

use crate::error::GpuError;
use crate::job::{JobOutput, LinearJob};
use crate::worker::WorkerId;
use dk_field::F25;
use dk_linalg::Tensor;

/// One worker's outcome for one job: the output, or the fault that kept
/// it from answering.
pub type WorkerResult = Result<JobOutput, GpuError>;

/// An execution backend for the offloaded linear operations.
pub trait GpuExec {
    /// Number of workers (`K'`).
    fn num_workers(&self) -> usize;

    /// Executes `jobs[i]` on worker `i` and returns per-worker outcomes
    /// in worker order. `tag` identifies the virtual-batch context the
    /// jobs belong to (used for tracing and queue bookkeeping by
    /// asynchronous backends; the blocking backend ignores it).
    ///
    /// # Errors
    ///
    /// [`GpuError::Oversubscribed`] if more jobs than workers were
    /// submitted. Per-worker faults (loss, timeout) are reported in the
    /// corresponding [`WorkerResult`] slot, never as the outer error —
    /// the caller decides whether to repair around them.
    fn execute(&mut self, tag: u64, jobs: &[LinearJob]) -> Result<Vec<WorkerResult>, GpuError>;

    /// Like [`GpuExec::execute`], but appends the per-worker outcomes to
    /// a caller-provided buffer instead of allocating a fresh `Vec` —
    /// the session keeps that buffer in its workspace pool, so the
    /// steady-state round-trip allocates nothing. The default forwards
    /// to `execute` and drains; backends override to skip the
    /// intermediate `Vec` entirely.
    ///
    /// # Errors
    ///
    /// Same contract as [`GpuExec::execute`]; on error `out` is left
    /// unchanged.
    fn execute_into(
        &mut self,
        tag: u64,
        jobs: &[LinearJob],
        out: &mut Vec<WorkerResult>,
    ) -> Result<(), GpuError> {
        out.append(&mut self.execute(tag, jobs)?);
        Ok(())
    }

    /// Hands decoded output tensors back to the backend so their buffers
    /// can return to whichever pool produced them (worker workspaces for
    /// in-process backends). Drains `outputs`; the `Vec` itself stays
    /// with the caller for reuse. Best-effort — the default simply drops
    /// the tensors, which is always correct (remote backends received
    /// them over the wire and have no pool to return them to).
    fn recycle_outputs(&mut self, outputs: &mut Vec<Tensor<F25>>) {
        outputs.clear();
    }

    /// Executes a single job on a specific worker (spot checks and the
    /// unencoded data-gradient offload).
    fn execute_on(&mut self, id: WorkerId, job: &LinearJob) -> WorkerResult;

    /// Stores per-worker forward encodings (worker `i` receives
    /// `encodings[i]`) under the given context id for backward reuse.
    /// Best-effort: a store that cannot reach a dead worker is dropped
    /// silently — that worker's subsequent jobs fail with a typed error
    /// and the session repairs around it.
    fn store_encodings(&mut self, ctx_id: u64, encodings: Vec<Tensor<F25>>);

    /// Releases stored encodings for the given context ids (virtual
    /// batch retired). Best-effort, like `store_encodings`.
    fn release_contexts(&mut self, ctx_ids: &[u64]);
}
