//! Adversarial worker behaviours.
//!
//! The paper's threat model (§3) is a *dynamic malicious adversary*:
//! GPUs "may also inject faults in the computation to sabotage training
//! or inference". These behaviours model the fault classes DarKnight's
//! redundant-equation integrity check must detect.

use dk_field::{F25, FieldRng};
use dk_linalg::Tensor;

/// How a worker treats the results it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Faithful execution.
    Honest,
    /// Adds a uniformly random field element to every output element —
    /// a gross corruption.
    AdditiveNoise,
    /// Corrupts exactly one output element (the hardest fault to catch
    /// with coarse checks).
    SingleElement,
    /// Returns all zeros (a lazy/free-riding worker).
    ZeroOutput,
    /// Scales every element by a constant (a "almost right" adversary,
    /// defeats sanity checks that only look at magnitudes of change).
    Scale(u64),
    /// Returns stale results: executes honestly but on a zeroed input,
    /// modelling a worker that skips the fresh data.
    StaleInput,
    /// Executes `after` jobs honestly, then dies: the execution backends
    /// interpret this as worker loss (a dispatcher thread exits, a
    /// blocking cluster reports [`crate::GpuError::WorkerLost`]) — the
    /// fail-stop fault class, as opposed to the Byzantine ones above.
    Crash {
        /// Jobs executed honestly before the simulated death.
        after: u64,
    },
}

impl Behavior {
    /// True for [`Behavior::Honest`].
    pub fn is_honest(self) -> bool {
        self == Behavior::Honest
    }

    /// Applies the behaviour's corruption to an honestly-computed
    /// output. `StaleInput` is handled at job-execution time and acts
    /// like `ZeroOutput` here (a zeroed input to a bilinear op produces
    /// a zero output). `Crash` never corrupts — up to the moment the
    /// backend declares the worker dead, its answers are honest.
    pub fn corrupt(self, mut honest: Tensor<F25>, rng: &mut FieldRng) -> Tensor<F25> {
        match self {
            Behavior::Honest | Behavior::Crash { .. } => honest,
            Behavior::AdditiveNoise => {
                for v in honest.as_mut_slice() {
                    *v += rng.uniform::<{ dk_field::P25 }>();
                }
                honest
            }
            Behavior::SingleElement => {
                if !honest.is_empty() {
                    let idx = rng.index(honest.len());
                    let bump = rng.uniform_nonzero::<{ dk_field::P25 }>();
                    let s = honest.as_mut_slice();
                    s[idx] += bump;
                }
                honest
            }
            Behavior::ZeroOutput | Behavior::StaleInput => {
                for v in honest.as_mut_slice() {
                    *v = F25::ZERO;
                }
                honest
            }
            Behavior::Scale(k) => {
                let k = F25::new(k);
                for v in honest.as_mut_slice() {
                    *v *= k;
                }
                honest
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor<F25> {
        Tensor::from_fn(&[8], |i| F25::new(i as u64 + 1))
    }

    #[test]
    fn honest_is_identity() {
        let mut rng = FieldRng::seed_from(1);
        let t = sample();
        assert_eq!(Behavior::Honest.corrupt(t.clone(), &mut rng), t);
    }

    #[test]
    fn additive_changes_everything_whp() {
        let mut rng = FieldRng::seed_from(2);
        let t = sample();
        let c = Behavior::AdditiveNoise.corrupt(t.clone(), &mut rng);
        let changed = t.as_slice().iter().zip(c.as_slice()).filter(|(a, b)| a != b).count();
        assert!(changed >= 7, "changed={changed}");
    }

    #[test]
    fn single_element_changes_exactly_one() {
        let mut rng = FieldRng::seed_from(3);
        let t = sample();
        let c = Behavior::SingleElement.corrupt(t.clone(), &mut rng);
        let changed = t.as_slice().iter().zip(c.as_slice()).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn zero_output_zeroes() {
        let mut rng = FieldRng::seed_from(4);
        let c = Behavior::ZeroOutput.corrupt(sample(), &mut rng);
        assert!(c.as_slice().iter().all(|v| v.is_zero()));
    }

    #[test]
    fn scale_multiplies() {
        let mut rng = FieldRng::seed_from(5);
        let c = Behavior::Scale(3).corrupt(sample(), &mut rng);
        assert_eq!(c.as_slice()[1], F25::new(6));
    }

    #[test]
    fn honesty_predicate() {
        assert!(Behavior::Honest.is_honest());
        assert!(!Behavior::Scale(2).is_honest());
    }
}
