//! Standalone remote GPU worker process.
//!
//! Listens on the given address and serves [`dk_gpu::wire`]-protocol
//! connections until one of them sends `Shutdown`. Each connection
//! hosts one logical worker, so a fleet manifest can point several
//! `worker` lines at one process.
//!
//! ```text
//! dk_gpu_worker 127.0.0.1:7501
//! dk_gpu_worker 127.0.0.1:0     # ephemeral port, printed as LISTEN <addr>
//! ```
//!
//! The process prints `LISTEN <addr>` once the socket is bound, so
//! spawners using port 0 can discover the actual address race-free.
//! Every lifecycle event — startup, each connection's close (worker
//! id, peer address, redial ordinal, frames and jobs served, exit
//! reason), and process exit — is logged as one structured `key=value`
//! line on stderr, so multi-process `remote_fleet`-style runs are
//! debuggable instead of exiting silently.

use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let addr = match (args.next(), args.next()) {
        (Some(a), None) if a != "--help" && a != "-h" => a,
        _ => {
            eprintln!("usage: dk_gpu_worker <host:port>");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[dk_gpu_worker] event=exit reason=bind-failed addr={addr} error=\"{e}\"");
            return ExitCode::FAILURE;
        }
    };
    let local = match listener.local_addr() {
        Ok(local) => {
            println!("LISTEN {local}");
            local
        }
        Err(e) => {
            eprintln!("[dk_gpu_worker] event=exit reason=no-local-addr error=\"{e}\"");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("[dk_gpu_worker] listen={local} event=started pid={}", std::process::id());
    if let Err(e) = dk_gpu::serve_fleet_worker_verbose(listener) {
        eprintln!("[dk_gpu_worker] listen={local} event=exit reason=accept-failed error=\"{e}\"");
        return ExitCode::FAILURE;
    }
    eprintln!("[dk_gpu_worker] listen={local} event=exit reason=shutdown-requested");
    ExitCode::SUCCESS
}
