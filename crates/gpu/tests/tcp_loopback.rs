//! Transport-level loopback tests for the TCP fleet: framed execution
//! parity with in-process workers, reconnect-with-replay of stored
//! encodings, and clean shutdown.

use std::net::TcpListener;
use std::sync::Arc;

use dk_field::F25;
use dk_gpu::{
    serve_fleet_worker, Behavior, FleetManifest, GpuCluster, GpuExec, GpuWorker, LinearJob,
    TcpFleet, WorkerId,
};
use dk_linalg::{Conv2dShape, Tensor};

fn spawn_host() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || serve_fleet_worker(listener));
    addr
}

fn fleet(addr: &str, n: usize) -> TcpFleet {
    TcpFleet::from_manifest(&FleetManifest {
        workers: vec![addr.to_string(); n],
        io_timeout_ms: 10_000,
        ..FleetManifest::default()
    })
}

fn conv_job(scale: u64) -> LinearJob {
    let shape = Conv2dShape::simple(2, 3, 3, 1, 1);
    LinearJob::ConvForward {
        weights: Arc::new(Tensor::from_fn(&shape.weight_shape(), |i| F25::new(i as u64 * scale))),
        x: Tensor::from_fn(&[1, 2, 5, 5], move |i| F25::new((i as u64 + scale) % 97)),
        shape,
    }
}

/// Remote execution returns exactly what an honest in-process worker
/// computes, across every job kind the forward path uses.
#[test]
fn remote_execution_matches_in_process_bit_for_bit() {
    let addr = spawn_host();
    let mut fleet = fleet(&addr, 3);
    let jobs: Vec<LinearJob> = (1..=3).map(conv_job).collect();
    let mut reference = GpuCluster::honest(3, 1);
    let expect = reference.execute(&jobs);
    let got = fleet.execute(7, &jobs).unwrap();
    for (g, e) in got.into_iter().zip(expect) {
        assert_eq!(g.unwrap(), e);
    }
    fleet.shutdown();
}

/// The replay cache reconstructs a reconnected worker's stored
/// encodings: a `*Stored` backward job after a severed connection
/// returns the same bits as before the loss.
#[test]
fn reconnect_replays_stored_encodings_bit_identically() {
    let addr = spawn_host();
    let mut fleet = fleet(&addr, 1);
    let enc = Tensor::from_fn(&[1, 6], |i| F25::new(i as u64 * 13 + 1));
    let delta = Arc::new(Tensor::from_fn(&[2, 4], |i| F25::new(i as u64 * 5 + 2)));
    let beta = vec![F25::new(3), F25::new(11)];
    fleet.store_encodings(42, vec![enc.clone()]);
    let job = LinearJob::DenseWeightGradStored {
        delta_batch: delta.clone(),
        beta: beta.clone(),
        layer_id: 42,
    };
    let before = fleet.execute_on(WorkerId(0), &job).unwrap();
    // The local ground truth the worker should be computing.
    let mut local = GpuWorker::new(WorkerId(0), Behavior::Honest, 9);
    local.store_encoding(42, enc);
    assert_eq!(before, local.execute(&job));
    // Sever: the remote side's per-connection state (the stored
    // encoding) is gone. The next use must redial and replay it.
    fleet.sever_connection(WorkerId(0));
    let after = fleet.execute_on(WorkerId(0), &job).unwrap();
    assert_eq!(after, before, "replayed encoding must reproduce the same bits");
    assert_eq!(fleet.reconnects(), 1);
    // A released context is dropped from the cache: after another
    // sever, the job is refused rather than served from stale state.
    fleet.release_contexts(&[42]);
    fleet.sever_connection(WorkerId(0));
    let refused = fleet.execute_on(WorkerId(0), &job);
    assert!(matches!(refused, Err(dk_gpu::GpuError::Remote { .. })), "{refused:?}");
    fleet.shutdown();
}

/// `shutdown` stops the host's accept loop; later dials are typed
/// worker-lost errors, not hangs or panics.
#[test]
fn shutdown_terminates_the_host() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    let host = std::thread::spawn(move || serve_fleet_worker(listener));
    let mut fleet = fleet(&addr, 2);
    let jobs: Vec<LinearJob> = (1..=2).map(conv_job).collect();
    let results = fleet.execute(0, &jobs).unwrap();
    assert!(results.iter().all(Result::is_ok));
    fleet.shutdown();
    host.join().expect("host thread").expect("accept loop");
}
