//! End-to-end time composition for every evaluated system.
//!
//! All functions return a per-image [`Breakdown`] for an ImageNet-scale
//! [`ArchSpec`], composed from exact per-layer operation counts and the
//! calibrated [`DeviceProfile`] rates. The four buckets match the
//! paper's Table 3 categories: linear (accelerator compute), non-linear
//! (TEE float ops), encoding/decoding (TEE masking work), and
//! communication (TEE↔GPU wire time).

use crate::device::DeviceProfile;
use dk_nn::arch::{ArchSpec, SpecKind};

/// Per-image time decomposition (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Linear-op compute (on whichever device runs it).
    pub linear: f64,
    /// Non-linear ops (ReLU, pooling, batch norm, add — TEE side for
    /// the protected systems).
    pub nonlinear: f64,
    /// Masking work: DarKnight encode/decode, Slalom blind/unblind and
    /// unblinding-factor fetch.
    pub maskio: f64,
    /// TEE↔GPU communication.
    pub comm: f64,
}

impl Breakdown {
    /// Serialized total: every phase back-to-back (the paper's
    /// non-pipelined configuration).
    pub fn total_serial(&self) -> f64 {
        self.linear + self.nonlinear + self.maskio + self.comm
    }

    /// Pipelined total: masking and communication overlap accelerator
    /// compute (§7.1 "the communication overhead can be easily hidden"),
    /// leaving the TEE-resident non-linear work exposed.
    pub fn total_pipelined(&self) -> f64 {
        self.nonlinear + self.linear.max(self.maskio + self.comm)
    }

    /// Phase fractions of the serialized total
    /// `(linear, nonlinear, maskio, comm)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total_serial().max(1e-30);
        (self.linear / t, self.nonlinear / t, self.maskio / t, self.comm / t)
    }

    /// The Fig.-5 pipelining gain this breakdown predicts:
    /// `total_serial / total_pipelined` — how much wall clock the §7.1
    /// overlap recovers. The measured counterpart is
    /// `dk_core::engine::PipelineReport::speedup`, and
    /// [`crate::report::pipeline_table`] renders the two side by side.
    pub fn pipeline_gain(&self) -> f64 {
        self.total_serial() / self.total_pipelined().max(1e-30)
    }
}

/// Per-layer SGX linear rate (GMAC/s): grouped/depthwise convs are
/// memory-bound and run at `sgx_linear_dw`.
fn sgx_linear_rate(l: &dk_nn::arch::LayerSpec, p: &DeviceProfile) -> f64 {
    if l.groups > 1 {
        p.sgx_linear_dw
    } else {
        p.sgx_linear_fwd
    }
}

/// Per-layer GPU linear rate (GMAC/s) for the given pass.
fn gpu_linear_rate(l: &dk_nn::arch::LayerSpec, p: &DeviceProfile, backward: bool) -> f64 {
    if l.groups > 1 {
        p.gpu_linear_dw
    } else if backward {
        p.gpu_linear_bwd
    } else {
        p.gpu_linear_fwd
    }
}

/// Per-image non-linear time at the given SGX rates, with `relief`
/// applied (DarKnight's light-footprint advantage; 1.0 for the
/// everything-resident baseline). At inference time batch-norm folds
/// into the preceding convolution (standard deployment practice, which
/// the paper's inference baselines also use), so it costs nothing.
fn nonlinear_time(spec: &ArchSpec, p: &DeviceProfile, relief: f64, training: bool) -> f64 {
    let mut t = 0.0;
    for l in &spec.layers {
        let e = l.nonlinear_elems as f64;
        if e == 0.0 {
            continue;
        }
        t += match l.kind {
            SpecKind::Relu => {
                let fwd = e / (p.sgx_relu_fwd * 1e9);
                let bwd = if training { e / (p.sgx_relu_bwd * 1e9) } else { 0.0 };
                fwd + bwd
            }
            SpecKind::MaxPool => {
                let fwd = e / (p.sgx_pool_fwd * 1e9);
                let bwd = if training { e / (p.sgx_pool_bwd * 1e9) } else { 0.0 };
                fwd + bwd
            }
            SpecKind::BatchNorm => {
                if training {
                    2.0 * e / (p.sgx_batchnorm * 1e9)
                } else {
                    0.0 // folded into the conv weights at inference
                }
            }
            SpecKind::AvgPool | SpecKind::Add => {
                let per_pass = e / (p.sgx_add * 1e9);
                if training {
                    2.0 * per_pass
                } else {
                    per_pass
                }
            }
            SpecKind::Conv | SpecKind::Dense => 0.0,
        } / relief;
    }
    t
}

/// SGX-only baseline, training (per image).
pub fn sgx_training(spec: &ArchSpec, p: &DeviceProfile) -> Breakdown {
    let mut linear = 0.0;
    for l in &spec.layers {
        let rate = sgx_linear_rate(l, p) * 1e9;
        linear += (l.fwd_macs + l.bwd_data_macs + l.bwd_weight_macs) as f64 / rate;
    }
    Breakdown {
        linear,
        nonlinear: nonlinear_time(spec, p, 1.0, true),
        maskio: 0.0,
        comm: 0.0,
    }
}

/// SGX-only baseline, inference (per image).
pub fn sgx_inference(spec: &ArchSpec, p: &DeviceProfile) -> Breakdown {
    let mut linear = 0.0;
    for l in &spec.layers {
        linear += l.fwd_macs as f64 / (sgx_linear_rate(l, p) * 1e9);
    }
    Breakdown {
        linear,
        nonlinear: nonlinear_time(spec, p, 1.0, false),
        maskio: 0.0,
        comm: 0.0,
    }
}

/// DarKnight training (per image) with virtual batch `k`, noise count
/// `m` and optional integrity equation. `K' = k + m (+1)` workers run
/// concurrently; each holds one encoding.
pub fn darknight_training(
    spec: &ArchSpec,
    p: &DeviceProfile,
    k: usize,
    m: usize,
    integrity: bool,
) -> Breakdown {
    let kf = k as f64;
    let s_sq = (k + m) as f64;
    let s_tot = s_sq + if integrity { 1.0 } else { 0.0 };
    let workers = s_tot;
    let mut linear = 0.0;
    let mut maskio = 0.0;
    let mut comm = 0.0;
    for l in &spec.layers {
        if l.fwd_macs == 0 {
            continue;
        }
        let (fwd, bwd_w, bwd_d) =
            (l.fwd_macs as f64, l.bwd_weight_macs as f64, l.bwd_data_macs as f64);
        let (in_e, out_e, w_e) = (l.in_elems as f64, l.out_elems as f64, l.weight_elems as f64);
        // GPU wall time per virtual batch: encodings run concurrently,
        // so forward and Eq_j cost one sample's work; the unencoded
        // data-gradient term (K samples) is split across all workers.
        let g_fwd = gpu_linear_rate(l, p, false) * 1e9;
        let g_bwd = gpu_linear_rate(l, p, true) * 1e9;
        linear += fwd / g_fwd + bwd_w / g_bwd + kf * bwd_d / (g_bwd * workers);
        // TEE masking (bandwidth-bound, §5 / Fig. 6b): encode touches
        // S_tot input-sized vectors, forward decode S_sq+K output-sized,
        // backward Eq decode S_sq+1 weight-sized, δ quantization K
        // output-sized.
        maskio += p.mask_time(s_tot * in_e + (s_sq + kf) * out_e)
            + p.mask_time((s_sq + 1.0) * w_e + kf * out_e);
        // Wire: every worker has its own 40 Gb/s link (the paper's
        // switch topology), so per-worker traffic moves in parallel and
        // the wall time is the per-worker maximum: one encoding out and
        // one masked output back (forward); K δ's in, one Eq_j gradient
        // back (backward); the data-grad result returns on one link.
        comm += p.link_time(in_e + out_e) + p.link_time(kf * out_e + w_e) + p.link_time(kf * in_e);
    }
    Breakdown {
        linear: linear / kf,
        nonlinear: nonlinear_time(spec, p, p.sgx_light_relief, true),
        maskio: maskio / kf,
        comm: comm / kf,
    }
}

/// DarKnight inference (per image).
pub fn darknight_inference(
    spec: &ArchSpec,
    p: &DeviceProfile,
    k: usize,
    m: usize,
    integrity: bool,
) -> Breakdown {
    let kf = k as f64;
    let s_sq = (k + m) as f64;
    let s_tot = s_sq + if integrity { 1.0 } else { 0.0 };
    let mut linear = 0.0;
    let mut maskio = 0.0;
    let mut comm = 0.0;
    // Enclave working set of the masking stage: larger virtual batches
    // hold more simultaneous copies; past the EPC limit the TEE-side
    // masking pays the paging penalty (the Fig. 6b degradation at K>4).
    let ws = p.masking_working_set(k, spec.max_activation_elems() as f64);
    let paging = p.paging_multiplier(ws);
    for l in &spec.layers {
        if l.fwd_macs == 0 {
            continue;
        }
        let fwd = l.fwd_macs as f64;
        let (in_e, out_e) = (l.in_elems as f64, l.out_elems as f64);
        linear += fwd / (gpu_linear_rate(l, p, false) * 1e9);
        maskio += p.mask_time(s_tot * in_e + (s_sq + kf) * out_e) * paging;
        // Per-worker links in parallel: one encoding out, one result back.
        comm += p.link_time(in_e + out_e);
    }
    Breakdown {
        linear: linear / kf,
        nonlinear: nonlinear_time(spec, p, p.sgx_light_relief, false),
        maskio: maskio / kf,
        comm: comm / kf,
    }
}

/// Slalom inference (per image), optionally with Freivalds integrity.
pub fn slalom_inference(spec: &ArchSpec, p: &DeviceProfile, integrity: bool) -> Breakdown {
    let mut linear = 0.0;
    let mut maskio = 0.0;
    let mut comm = 0.0;
    for l in &spec.layers {
        if l.fwd_macs == 0 {
            continue;
        }
        let fwd = l.fwd_macs as f64;
        let (in_e, out_e) = (l.in_elems as f64, l.out_elems as f64);
        linear += fwd / (gpu_linear_rate(l, p, false) * 1e9);
        // Blind (add r) + unblind (subtract u): touch in+out elements;
        // plus fetching and decrypting the sealed (r, u) pair from
        // untrusted memory — Slalom's distinguishing cost (§7.2: "At
        // each layer, they retrieve the necessary unblinding factors
        // into SGX, then decrypt them").
        maskio += p.mask_time(in_e + out_e) + p.seal_time((in_e + out_e) * 4.0);
        comm += p.link_time(in_e + out_e);
        if integrity {
            // Freivalds: the enclave convolves the blinded input with
            // the s-projected single-output filter (cost macs/out_ch)
            // and projects the claimed outputs (out_e MACs).
            let oc = l.out_channels.max(1) as f64;
            linear += (fwd / oc) / (sgx_linear_rate(l, p) * 1e9);
            maskio += p.mask_time(out_e);
        }
    }
    Breakdown {
        linear,
        nonlinear: nonlinear_time(spec, p, p.sgx_light_relief, false),
        maskio,
        comm,
    }
}

/// Non-private training on `n_gpus` data-parallel GPUs (per image).
pub fn gpu_plain_training(spec: &ArchSpec, p: &DeviceProfile, n_gpus: usize) -> Breakdown {
    let g = n_gpus as f64;
    let mut linear = 0.0;
    let mut nl = 0.0;
    for l in &spec.layers {
        let g_fwd = gpu_linear_rate(l, p, false) * 1e9;
        let g_bwd = gpu_linear_rate(l, p, true) * 1e9;
        linear += l.fwd_macs as f64 / g_fwd + (l.bwd_data_macs + l.bwd_weight_macs) as f64 / g_bwd;
        let e = l.nonlinear_elems as f64;
        nl += match l.kind {
            SpecKind::Relu => e / (p.gpu_relu_fwd * 1e9) + e / (p.gpu_relu_bwd * 1e9),
            SpecKind::MaxPool => e / (p.gpu_pool_fwd * 1e9) + e / (p.gpu_pool_bwd * 1e9),
            SpecKind::Conv | SpecKind::Dense => 0.0,
            // BN / residual adds: reduction-heavy, closer to the slow
            // backward-relu rate than the streaming forward one.
            _ => 2.0 * e / (p.gpu_relu_bwd * 1e9),
        };
    }
    Breakdown {
        linear: linear / g,
        nonlinear: nl / g,
        maskio: 0.0,
        // Gradient all-reduce per batch, amortized: negligible per image
        // at 128-image batches; charge the per-image share.
        comm: p.link_time(2.0 * spec.total_params() as f64 / 128.0),
    }
}

/// Fig. 3 model: wall time of the Algorithm 2 aggregation phase for a
/// training batch of `batch` images with virtual batch `k`, noise `m`.
///
/// Per virtual batch the TEE decodes `S·|W|` masked gradient elements,
/// seals/evicts `|W|` floats and later reloads+unseals them. Larger `K`
/// means fewer virtual batches (less per-batch fixed work) until the
/// encode working set exceeds the EPC.
pub fn aggregation_time(spec: &ArchSpec, p: &DeviceProfile, k: usize, m: usize, batch: usize) -> f64 {
    let params = spec.total_params() as f64;
    let v = (batch as f64 / k as f64).ceil();
    let s_sq = (k + m) as f64;
    let ws = p.masking_working_set(k, spec.max_activation_elems() as f64);
    let paging = p.paging_multiplier(ws);
    let per_vb = p.mask_time(s_sq * params) // γ-weighted Eq decode
        + 2.0 * p.seal_time(params * 4.0); // seal+evict, reload+unseal
    v * per_vb * paging
}

/// Fig. 7 model: relative latency of the SGX-only baseline when `t`
/// training threads share the enclave (working set scales with `t`;
/// everything beyond the EPC pays the paging penalty).
pub fn sgx_multithread_latency(spec: &ArchSpec, p: &DeviceProfile, threads: usize) -> f64 {
    let base_ws = (spec.total_params() as f64 * 3.0 + spec.max_activation_elems() as f64 * 4.0) * 4.0;
    let t = threads as f64;
    // Per-batch latency: compute parallelizes across threads, but the
    // shared memory-encryption engine saturates and paging grows with
    // the combined working set.
    let single = sgx_training(spec, p).total_serial();
    single * p.paging_multiplier(base_ws * t) / p.paging_multiplier(base_ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_nn::arch::{mobilenet_v2, vgg16};

    fn p() -> DeviceProfile {
        DeviceProfile::calibrated()
    }

    #[test]
    fn sgx_training_dominated_by_linear_for_vgg() {
        let b = sgx_training(&vgg16(), &p());
        let (lin, _, _, _) = b.fractions();
        // Paper Table 3: baseline VGG16 spends 84% in linear ops.
        assert!(lin > 0.7, "linear fraction = {lin}");
    }

    #[test]
    fn darknight_flips_the_breakdown() {
        let b = darknight_training(&vgg16(), &p(), 2, 1, false);
        let (lin, nl, _, _) = b.fractions();
        // Paper Table 3: DarKnight VGG16 linear 4%, nonlinear 50%.
        assert!(lin < 0.15, "linear fraction = {lin}");
        assert!(nl > 0.3, "nonlinear fraction = {nl}");
    }

    #[test]
    fn darknight_beats_sgx_training() {
        for spec in [vgg16(), mobilenet_v2()] {
            let sgx = sgx_training(&spec, &p()).total_serial();
            let dk = darknight_training(&spec, &p(), 2, 1, false).total_serial();
            assert!(sgx / dk > 1.5, "{}: speedup {}", spec.name, sgx / dk);
        }
    }

    #[test]
    fn pipelined_no_slower_than_serial() {
        let b = darknight_training(&vgg16(), &p(), 2, 1, false);
        assert!(b.total_pipelined() <= b.total_serial());
    }

    #[test]
    fn plain_gpu_fastest() {
        let spec = vgg16();
        let plain = gpu_plain_training(&spec, &p(), 3).total_serial();
        let dk = darknight_training(&spec, &p(), 2, 1, false).total_serial();
        let sgx = sgx_training(&spec, &p()).total_serial();
        assert!(plain < dk && dk < sgx);
    }

    #[test]
    fn slalom_integrity_costs_more() {
        let spec = vgg16();
        let base = slalom_inference(&spec, &p(), false).total_serial();
        let with = slalom_inference(&spec, &p(), true).total_serial();
        assert!(with > base);
    }

    #[test]
    fn aggregation_time_improves_then_degrades() {
        let spec = vgg16();
        let t1 = aggregation_time(&spec, &p(), 1, 1, 128);
        let t4 = aggregation_time(&spec, &p(), 4, 1, 128);
        assert!(t4 < t1, "K=4 should beat K=1");
    }

    #[test]
    fn multithreading_hurts() {
        let spec = vgg16();
        let l1 = sgx_multithread_latency(&spec, &p(), 1);
        let l4 = sgx_multithread_latency(&spec, &p(), 4);
        assert!((l1 - sgx_training(&spec, &p()).total_serial()).abs() < 1e-9);
        assert!(l4 / l1 > 3.0, "4-thread latency ratio {}", l4 / l1);
    }
}
