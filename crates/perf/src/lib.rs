//! Performance model and experiment generators for DarKnight.
//!
//! Our substrate is a simulator, not the paper's Coffee Lake + GTX 1080 Ti
//! testbed, so absolute wall-clock comparisons are meaningless. Instead
//! this crate follows the calibrate-then-derive discipline laid out in
//! DESIGN.md:
//!
//! 1. [`device::DeviceProfile::calibrated`] fixes per-operation
//!    SGX/GPU throughput *ratios* to the paper's **Table 1**
//!    measurements (the only table we take as input), plus physically
//!    grounded constants (40 Gb/s link, 93 MB usable EPC, sealing
//!    bandwidth).
//! 2. [`cost`] composes those rates with the *exact* layer-by-layer
//!    operation counts of VGG16 / ResNet50 / MobileNetV1/V2 at 224×224
//!    (`dk_nn::arch`) into end-to-end time breakdowns for every system:
//!    SGX-only, DarKnight (pipelined & not), Slalom (±integrity),
//!    non-private GPU.
//! 3. [`experiments`] derives every other table and figure of the
//!    paper's evaluation from those breakdowns — Table 3/4, Fig. 3, 5,
//!    6a, 6b, 7 — so "who wins, by what factor, where the crossover
//!    falls" is a model *output*, not a constant.
//!
//! [`report`] renders each experiment as the same rows/series the paper
//! prints.

pub mod cost;
pub mod device;
pub mod experiments;
pub mod report;
pub mod serving;

pub use device::DeviceProfile;
pub use serving::ServingRow;

/// One measured-vs-analytical pipelining comparison row (rendered by
/// [`report::pipeline_table`]).
///
/// `measured_speedup` comes from actually running the staged engine
/// against the sequential session (`dk_core::engine`); `analytical`
/// is the Fig.-5 overlap gain the cost model predicts for a reference
/// architecture ([`cost::Breakdown::pipeline_gain`]). The two describe
/// different hosts — the measured row is this machine's simulation, the
/// analytical row the paper's calibrated testbed — so the comparison is
/// directional (both must show overlap paying), not an identity.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Workload label (model, mode, latency profile).
    pub label: String,
    /// Virtual batches executed per mode.
    pub batches: usize,
    /// Sequential wall clock, milliseconds.
    pub sequential_ms: f64,
    /// Pipelined wall clock, milliseconds.
    pub pipelined_ms: f64,
    /// Measured `sequential / pipelined`.
    pub measured_speedup: f64,
    /// The cost model's predicted overlap gain for the named reference
    /// architecture.
    pub analytical_speedup: f64,
    /// Which architecture the analytical column refers to.
    pub analytical_arch: String,
}
