//! One generator per paper table/figure.
//!
//! Each function returns plain data; [`crate::report`] renders it in the
//! same rows/series the paper prints. Figure 4 (training accuracy) is
//! the one experiment that needs *real* execution rather than the cost
//! model — it lives in the `dk-bench` report binary, which has access to
//! the full stack.

use crate::cost::{
    aggregation_time, darknight_inference, darknight_training, gpu_plain_training, sgx_inference,
    sgx_multithread_latency, sgx_training, slalom_inference, Breakdown,
};
use crate::device::DeviceProfile;
use dk_nn::arch::{mobilenet_v1, mobilenet_v2, resnet50, vgg16, ArchSpec, SpecKind};

/// Table 1: per-op GPU-vs-SGX speedups for VGG16 training.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// `(operation, forward speedup, backward speedup)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Table 1 generator. The per-op rows reproduce the calibration inputs;
/// the `Total` row is a model *output* (op-count-weighted composition)
/// that should land near the paper's 119.03 / 124.56.
pub fn table1(p: &DeviceProfile) -> Table1 {
    let spec = vgg16();
    let linear_fwd = spec.total_fwd_macs() as f64;
    let linear_bwd = spec.total_bwd_macs() as f64;
    let relu = spec.nonlinear_elems(Some(SpecKind::Relu)) as f64;
    let pool = spec.nonlinear_elems(Some(SpecKind::MaxPool)) as f64;

    let sgx_fwd = linear_fwd / (p.sgx_linear_fwd * 1e9)
        + relu / (p.sgx_relu_fwd * 1e9)
        + pool / (p.sgx_pool_fwd * 1e9);
    let gpu_fwd = linear_fwd / (p.gpu_linear_fwd * 1e9)
        + relu / (p.gpu_relu_fwd * 1e9)
        + pool / (p.gpu_pool_fwd * 1e9);
    let sgx_bwd = linear_bwd / (p.sgx_linear_bwd * 1e9)
        + relu / (p.sgx_relu_bwd * 1e9)
        + pool / (p.sgx_pool_bwd * 1e9);
    let gpu_bwd = linear_bwd / (p.gpu_linear_bwd * 1e9)
        + relu / (p.gpu_relu_bwd * 1e9)
        + pool / (p.gpu_pool_bwd * 1e9);

    Table1 {
        rows: vec![
            (
                "Linear Ops".to_string(),
                p.gpu_linear_fwd / p.sgx_linear_fwd,
                p.gpu_linear_bwd / p.sgx_linear_bwd,
            ),
            (
                "Maxpool Time".to_string(),
                p.gpu_pool_fwd / p.sgx_pool_fwd,
                p.gpu_pool_bwd / p.sgx_pool_bwd,
            ),
            (
                "Relu Time".to_string(),
                p.gpu_relu_fwd / p.sgx_relu_fwd,
                p.gpu_relu_bwd / p.sgx_relu_bwd,
            ),
            ("Total".to_string(), sgx_fwd / gpu_fwd, sgx_bwd / gpu_bwd),
        ],
    }
}

/// One row of Table 2's qualitative capability matrix.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Scheme name.
    pub method: &'static str,
    /// Capability flags, in the paper's column order: training,
    /// inference, DP, MPC, HE, TEE, data privacy, model privacy
    /// (client), model privacy (server), integrity, GPU acceleration,
    /// large DNNs.
    pub flags: [bool; 12],
}

/// Table 2: the paper's comparison matrix, encoded as data.
pub fn table2() -> Vec<Table2Row> {
    let r = |method, flags| Table2Row { method, flags };
    vec![
        r("SecureNN", [true, true, false, true, false, false, true, true, true, false, true, false]),
        r("Chiron", [true, true, false, false, false, true, true, true, true, true, false, false]),
        r("MSP", [true, true, false, false, false, true, true, true, true, true, false, false]),
        r("Gazelle", [false, true, false, false, true, false, true, false, false, false, true, true]),
        r("MiniONN", [false, true, false, true, true, false, true, true, false, false, true, true]),
        r("CryptoNets", [false, true, false, true, true, false, true, true, false, false, true, true]),
        r("Slalom", [false, true, false, false, false, true, true, true, false, true, true, true]),
        r("Origami", [false, true, false, false, false, true, true, false, false, false, true, true]),
        r("Occlumency", [false, true, false, false, false, true, true, true, true, true, false, true]),
        r("Delphi", [false, true, false, true, true, false, true, true, false, false, true, true]),
        r("DarKnight", [true, true, false, true, false, true, true, true, false, true, true, true]),
    ]
}

/// One model's Table 3 entry: phase fractions for DarKnight and the
/// SGX-only baseline.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Model name.
    pub model: String,
    /// DarKnight fractions `(linear, nonlinear, enc/dec, comm)`.
    pub darknight: (f64, f64, f64, f64),
    /// Baseline fractions (same order; enc/dec and comm are zero).
    pub baseline: (f64, f64, f64, f64),
}

/// Table 3: training-time breakdowns (K=2, M=1, 3 GPUs — §7.1 setup).
pub fn table3(p: &DeviceProfile) -> Vec<Table3Row> {
    [vgg16(), resnet50(), mobilenet_v2()]
        .into_iter()
        .map(|spec| Table3Row {
            model: spec.name.clone(),
            darknight: darknight_training(&spec, p, 2, 1, false).fractions(),
            baseline: sgx_training(&spec, p).fractions(),
        })
        .collect()
}

/// One row of Table 4: unprotected 3-GPU training speedups.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Model name.
    pub model: String,
    /// Speedup of non-private 3-GPU training over DarKnight (3 GPUs).
    pub over_darknight: f64,
    /// Speedup of non-private 3-GPU training over SGX-only.
    pub over_sgx: f64,
}

/// Table 4 generator.
pub fn table4(p: &DeviceProfile) -> Vec<Table4Row> {
    [vgg16(), resnet50(), mobilenet_v2()]
        .into_iter()
        .map(|spec| {
            let plain = gpu_plain_training(&spec, p, 3).total_serial();
            let dk = darknight_training(&spec, p, 2, 1, false).total_serial();
            let sgx = sgx_training(&spec, p).total_serial();
            Table4Row { model: spec.name.clone(), over_darknight: dk / plain, over_sgx: sgx / plain }
        })
        .collect()
}

/// Fig. 3 series for one model: aggregation speedup vs `K`.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// Model name.
    pub model: String,
    /// `(K, speedup relative to K=1)` for K = 2..=5.
    pub points: Vec<(usize, f64)>,
}

/// Fig. 3 generator (batch 128, M=1, as in the paper).
pub fn fig3(p: &DeviceProfile) -> Vec<Fig3Series> {
    [vgg16(), resnet50(), mobilenet_v2()]
        .into_iter()
        .map(|spec| {
            let t1 = aggregation_time(&spec, p, 1, 1, 128);
            let points = (2..=5)
                .map(|k| (k, t1 / aggregation_time(&spec, p, k, 1, 128)))
                .collect();
            Fig3Series { model: spec.name.clone(), points }
        })
        .collect()
}

/// Fig. 5 entry for one model.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Model name.
    pub model: String,
    /// Total training speedup over SGX, non-pipelined.
    pub total_nonpipelined: f64,
    /// Total training speedup over SGX, pipelined.
    pub total_pipelined: f64,
    /// Linear-op-path speedup (linear+mask+comm vs baseline linear),
    /// non-pipelined.
    pub linear_nonpipelined: f64,
    /// Same, pipelined.
    pub linear_pipelined: f64,
}

/// Fig. 5 generator (K=2, M=1, 3 GPUs).
pub fn fig5(p: &DeviceProfile) -> Vec<Fig5Row> {
    [vgg16(), resnet50(), mobilenet_v2()]
        .into_iter()
        .map(|spec| {
            let sgx = sgx_training(&spec, p);
            let dk = darknight_training(&spec, p, 2, 1, false);
            let lin_base = sgx.linear;
            let lin_np = dk.linear + dk.maskio + dk.comm;
            let lin_pl = dk.linear.max(dk.maskio + dk.comm);
            Fig5Row {
                model: spec.name.clone(),
                total_nonpipelined: sgx.total_serial() / dk.total_serial(),
                total_pipelined: sgx.total_serial() / dk.total_pipelined(),
                linear_nonpipelined: lin_base / lin_np,
                linear_pipelined: lin_base / lin_pl,
            }
        })
        .collect()
}

/// Fig. 6a entry: inference speedups over the SGX baseline.
#[derive(Debug, Clone)]
pub struct Fig6aRow {
    /// Model name.
    pub model: String,
    /// Slalom (no integrity).
    pub slalom: f64,
    /// DarKnight with virtual batch 4, no integrity.
    pub darknight4: f64,
    /// Slalom with Freivalds integrity.
    pub slalom_integrity: f64,
    /// DarKnight with virtual batch 3 plus the redundant equation.
    pub darknight3_integrity: f64,
}

/// Fig. 6a generator (VGG16 and MobileNetV1, as in the paper).
pub fn fig6a(p: &DeviceProfile) -> Vec<Fig6aRow> {
    [vgg16(), mobilenet_v1()]
        .into_iter()
        .map(|spec| {
            let sgx = sgx_inference(&spec, p).total_serial();
            Fig6aRow {
                model: spec.name.clone(),
                slalom: sgx / slalom_inference(&spec, p, false).total_serial(),
                darknight4: sgx / darknight_inference(&spec, p, 4, 1, false).total_serial(),
                slalom_integrity: sgx / slalom_inference(&spec, p, true).total_serial(),
                darknight3_integrity: sgx
                    / darknight_inference(&spec, p, 3, 1, true).total_serial(),
            }
        })
        .collect()
}

/// Fig. 6b: per-phase inference speedups vs DarKnight(1) for VGG16.
#[derive(Debug, Clone)]
pub struct Fig6b {
    /// Virtual batch sizes evaluated.
    pub ks: Vec<usize>,
    /// `(category, speedups per K relative to K=1)`.
    pub series: Vec<(&'static str, Vec<f64>)>,
}

/// Fig. 6b generator.
pub fn fig6b(p: &DeviceProfile) -> Fig6b {
    let spec = vgg16();
    let ks = vec![1usize, 2, 4, 6];
    let detail = |k: usize| -> (f64, f64, f64, f64, f64) {
        let b = darknight_inference(&spec, p, k, 1, false);
        // Split maskio into blinding (input-sized share) and unblinding
        // (output-sized share) using the same proportions as the model.
        let kf = k as f64;
        let s = (k + 1) as f64;
        let mut enc = 0.0;
        let mut dec = 0.0;
        for l in &spec.layers {
            if l.fwd_macs == 0 {
                continue;
            }
            enc += s * l.in_elems as f64;
            dec += (s + kf) * l.out_elems as f64;
        }
        let enc_frac = enc / (enc + dec);
        let relu = spec.nonlinear_elems(Some(SpecKind::Relu)) as f64
            / (p.sgx_relu_fwd * 1e9)
            / p.sgx_light_relief;
        let pool = spec.nonlinear_elems(Some(SpecKind::MaxPool)) as f64
            / (p.sgx_pool_fwd * 1e9)
            / p.sgx_light_relief;
        (b.maskio * enc_frac, b.maskio * (1.0 - enc_frac), relu, pool, b.total_serial())
    };
    let base = detail(1);
    let series_for = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| -> Vec<f64> {
        ks.iter().map(|&k| f(&base) / f(&detail(k)).max(1e-30)).collect()
    };
    Fig6b {
        ks: ks.clone(),
        series: vec![
            ("Blinding", series_for(|d| d.0)),
            ("Unblinding", series_for(|d| d.1)),
            ("Relu", series_for(|d| d.2)),
            ("Maxpooling", series_for(|d| d.3)),
            ("Total", series_for(|d| d.4)),
        ],
    }
}

/// Fig. 7: SGX baseline training latency vs thread count (relative to
/// one thread).
pub fn fig7(p: &DeviceProfile) -> Vec<(usize, f64)> {
    let spec = vgg16();
    let base = sgx_multithread_latency(&spec, p, 1);
    (1..=4).map(|t| (t, sgx_multithread_latency(&spec, p, t) / base)).collect()
}

/// Headline summary: average training and inference speedups across the
/// evaluated models (the paper's "6.5× training / 12.5× inference").
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean non-pipelined training speedup over SGX.
    pub avg_training_speedup: f64,
    /// Mean DarKnight(4) inference speedup over SGX.
    pub avg_inference_speedup: f64,
}

/// Summary generator.
pub fn summary(p: &DeviceProfile) -> Summary {
    let train: Vec<f64> = fig5(p).iter().map(|r| r.total_nonpipelined).collect();
    let inf: Vec<f64> = [vgg16(), resnet50(), mobilenet_v1(), mobilenet_v2()]
        .into_iter()
        .map(|spec| {
            sgx_inference(&spec, p).total_serial()
                / darknight_inference(&spec, p, 4, 1, false).total_serial()
        })
        .collect();
    Summary {
        avg_training_speedup: train.iter().sum::<f64>() / train.len() as f64,
        avg_inference_speedup: inf.iter().sum::<f64>() / inf.len() as f64,
    }
}

/// Convenience: the breakdowns behind Table 3 / Fig. 5 for external
/// consumers (benches, docs).
pub fn training_breakdowns(p: &DeviceProfile) -> Vec<(ArchSpec, Breakdown, Breakdown)> {
    [vgg16(), resnet50(), mobilenet_v2()]
        .into_iter()
        .map(|spec| {
            let dk = darknight_training(&spec, p, 2, 1, false);
            let sgx = sgx_training(&spec, p);
            (spec, dk, sgx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DeviceProfile {
        DeviceProfile::calibrated()
    }

    #[test]
    fn table1_totals_near_paper() {
        let t = table1(&p());
        let total = &t.rows[3];
        // Paper: fwd 119.03, bwd 124.56. Same order of magnitude and
        // direction; composition should land within ~25%.
        assert!((total.1 - 119.0).abs() / 119.0 < 0.25, "fwd total {}", total.1);
        assert!((total.2 - 124.6).abs() / 124.6 < 0.35, "bwd total {}", total.2);
    }

    #[test]
    fn table2_darknight_row_matches_paper() {
        let t = table2();
        let dk = t.iter().find(|r| r.method == "DarKnight").unwrap();
        // Training, inference, MPC-like coding, TEE, data privacy,
        // client model privacy, integrity, GPU, large DNNs.
        assert_eq!(
            dk.flags,
            [true, true, false, true, false, true, true, true, false, true, true, true]
        );
        // Slalom: inference-only.
        let sl = t.iter().find(|r| r.method == "Slalom").unwrap();
        assert!(!sl.flags[0] && sl.flags[1]);
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn table3_shapes_match_paper() {
        for row in table3(&p()) {
            let (b_lin, ..) = row.baseline;
            let (d_lin, d_nl, d_mask, d_comm) = row.darknight;
            // Baseline is linear-dominated for VGG16 (paper: 84%);
            // BN-heavy models keep a larger non-linear share in our
            // Table-1-consistent calibration than the paper reports
            // (deviation recorded in EXPERIMENTS.md).
            if row.model == "VGG16" {
                assert!(b_lin > 0.5, "{}: baseline linear {b_lin}", row.model);
            }
            assert!(b_lin > d_lin, "{}: offload must shrink the linear share", row.model);
            assert!(d_lin < 0.2, "{}: darknight linear {d_lin}", row.model);
            // VGG16 lands near 0.31 under our Table-1-consistent
            // calibration (paper: 0.50); BN-heavy models exceed 0.5.
            assert!(d_nl > 0.25, "{}: darknight nonlinear {d_nl}", row.model);
            assert!(d_mask + d_comm > 0.05, "{}: overheads missing", row.model);
        }
    }

    #[test]
    fn table4_ordering_matches_paper() {
        let rows = table4(&p());
        for r in &rows {
            assert!(r.over_darknight > 5.0, "{}: {}", r.model, r.over_darknight);
            assert!(r.over_sgx > r.over_darknight, "{}", r.model);
        }
        // Paper: MobileNetV2 has the smallest SGX gap (80× vs 273/217).
        let sgx: Vec<f64> = rows.iter().map(|r| r.over_sgx).collect();
        assert!(sgx[2] < sgx[0] && sgx[2] < sgx[1], "{sgx:?}");
    }

    #[test]
    fn fig3_peaks_at_k4() {
        for series in fig3(&p()) {
            let s: std::collections::HashMap<usize, f64> = series.points.iter().copied().collect();
            assert!(s[&4] > s[&2], "{}: K=4 should beat K=2", series.model);
            assert!(s[&4] > 1.5 && s[&4] < 5.0, "{}: magnitude {}", series.model, s[&4]);
            // The K=5 EPC degradation only emerges for VGG16, whose
            // masking working set genuinely crosses the 93 MB EPC at
            // K=5. ResNet50/MobileNetV2 activations are far smaller, so
            // a faithful memory model cannot reproduce the paper's drop
            // there (recorded as a deviation in EXPERIMENTS.md).
            if series.model == "VGG16" {
                assert!(s[&4] > s[&5], "{}: K=5 should degrade (EPC)", series.model);
            }
        }
    }

    #[test]
    fn fig5_ordering_matches_paper() {
        let rows = fig5(&p());
        let by_name: std::collections::HashMap<&str, &Fig5Row> =
            rows.iter().map(|r| (r.model.as_str(), r)).collect();
        let vgg = by_name["VGG16"];
        let rn = by_name["ResNet50"];
        let mb = by_name["MobileNetV2"];
        // Paper: VGG16 ~8x, ResNet50 ~4.2x, MobileNetV2 ~2.2x (ordering
        // is the load-bearing claim).
        assert!(vgg.total_nonpipelined > rn.total_nonpipelined);
        assert!(rn.total_nonpipelined > mb.total_nonpipelined);
        assert!(vgg.total_nonpipelined > 4.0 && vgg.total_nonpipelined < 20.0);
        assert!(mb.total_nonpipelined > 1.2 && mb.total_nonpipelined < 5.0);
        // Pipelining helps everywhere.
        for r in &rows {
            assert!(r.total_pipelined >= r.total_nonpipelined);
            assert!(r.linear_pipelined > r.linear_nonpipelined);
        }
        // Paper: linear-op speedup ~23x non-pipelined for VGG16.
        assert!(vgg.linear_nonpipelined > 10.0 && vgg.linear_nonpipelined < 60.0,
            "linear np {}", vgg.linear_nonpipelined);
    }

    #[test]
    fn fig6a_ordering_matches_paper() {
        let rows = fig6a(&p());
        let vgg = &rows[0];
        // Paper: DarKnight(4) ≈ 15x > Slalom; DarKnight(3)+I > Slalom+I
        // by ~1.45x.
        assert!(vgg.darknight4 > vgg.slalom, "{vgg:?}");
        assert!(vgg.darknight3_integrity > vgg.slalom_integrity, "{vgg:?}");
        assert!(vgg.darknight4 > 5.0 && vgg.darknight4 < 40.0);
        let ratio = vgg.darknight3_integrity / vgg.slalom_integrity;
        assert!(ratio > 1.1 && ratio < 2.5, "integrity ratio {ratio}");
    }

    #[test]
    fn fig6b_improves_then_degrades() {
        let f = fig6b(&p());
        let total = &f.series.iter().find(|(n, _)| *n == "Total").unwrap().1;
        // K index: 0->1, 1->2, 2->4, 3->6.
        assert!(total[2] > total[1], "K=4 should beat K=2: {total:?}");
        assert!(total[2] > total[3], "K=6 should degrade: {total:?}");
        // Blinding/unblinding speedups grow toward K=4.
        let blind = &f.series[0].1;
        assert!(blind[2] > blind[0], "{blind:?}");
    }

    #[test]
    fn fig7_latency_grows() {
        let pts = fig7(&p());
        assert_eq!(pts[0], (1, 1.0));
        for w in pts.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        // Paper's figure tops out around 7x at 4 threads.
        let four = pts[3].1;
        assert!(four > 4.0 && four < 10.0, "4-thread latency {four}");
    }

    #[test]
    fn summary_near_paper_claims() {
        let s = summary(&p());
        // Paper: 6.5x average training, 12.5x average inference.
        assert!(s.avg_training_speedup > 3.0 && s.avg_training_speedup < 13.0,
            "training {}", s.avg_training_speedup);
        assert!(s.avg_inference_speedup > 6.0 && s.avg_inference_speedup < 25.0,
            "inference {}", s.avg_inference_speedup);
    }
}
