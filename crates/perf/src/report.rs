//! Text rendering of every experiment, in the paper's row/series format.

use crate::device::DeviceProfile;
use crate::experiments;

fn flag(b: bool) -> &'static str {
    if b {
        "●"
    } else {
        "○"
    }
}

/// Renders Table 1.
pub fn table1(p: &DeviceProfile) -> String {
    let t = experiments::table1(p);
    let mut s = String::from(
        "Table 1: Speedup in GPU relative to SGX, VGG16 training on ImageNet\n\
         (per-op rows are calibration inputs; Total is a model output)\n\n\
         Operations        Forward    Backward\n",
    );
    for (op, fwd, bwd) in &t.rows {
        s.push_str(&format!("{op:<16} {fwd:>8.2}  {bwd:>10.2}\n"));
    }
    s
}

/// Renders Table 2.
pub fn table2() -> String {
    let mut s = String::from(
        "Table 2: capability matrix (● supported, ○ not)\n\n\
         Method      Train Infer DP MPC HE TEE DataPriv MP(C) MP(S) Integ GPU LargeDNN\n",
    );
    for row in experiments::table2() {
        s.push_str(&format!("{:<11}", row.method));
        for (i, f) in row.flags.iter().enumerate() {
            let width = [6, 6, 3, 4, 3, 4, 9, 6, 6, 6, 4, 8][i];
            s.push_str(&format!("{:<width$}", flag(*f), width = width));
        }
        s.push('\n');
    }
    s
}

/// Renders Table 3.
pub fn table3(p: &DeviceProfile) -> String {
    let mut s = String::from(
        "Table 3: ImageNet training time breakdown (fractions of total)\n\n\
         Model        System     Linear  NonLinear  Enc-Dec  Comm\n",
    );
    for row in experiments::table3(p) {
        let (dl, dn, dm, dc) = row.darknight;
        let (bl, bn, bm, bc) = row.baseline;
        s.push_str(&format!(
            "{:<12} DarKnight  {dl:>6.2}  {dn:>9.2}  {dm:>7.2}  {dc:>5.2}\n",
            row.model
        ));
        s.push_str(&format!(
            "{:<12} Baseline   {bl:>6.2}  {bn:>9.2}  {bm:>7.2}  {bc:>5.2}\n",
            ""
        ));
    }
    s
}

/// Renders Table 4.
pub fn table4(p: &DeviceProfile) -> String {
    let mut s = String::from(
        "Table 4: non-private 3-GPU training speedup\n\n\
         Model         over DarKnight   over SGX-only\n",
    );
    for row in experiments::table4(p) {
        s.push_str(&format!(
            "{:<13} {:>13.2}  {:>14.2}\n",
            row.model, row.over_darknight, row.over_sgx
        ));
    }
    s
}

/// Renders Fig. 3.
pub fn fig3(p: &DeviceProfile) -> String {
    let mut s = String::from(
        "Fig. 3: aggregation speedup vs virtual batch size (batch 128, rel. K=1)\n\n\
         Model          K=2    K=3    K=4    K=5\n",
    );
    for series in experiments::fig3(p) {
        s.push_str(&format!("{:<13}", series.model));
        for (_, v) in &series.points {
            s.push_str(&format!(" {v:>5.2} "));
        }
        s.push('\n');
    }
    s
}

/// Renders Fig. 5.
pub fn fig5(p: &DeviceProfile) -> String {
    let mut s = String::from(
        "Fig. 5: ImageNet training speedup over SGX-only (K=2, 3 GPUs)\n\n\
         Model          Total(np)  Total(pipe)  Linear(np)  Linear(pipe)\n",
    );
    for row in experiments::fig5(p) {
        s.push_str(&format!(
            "{:<13} {:>9.2}  {:>11.2}  {:>10.2}  {:>12.2}\n",
            row.model,
            row.total_nonpipelined,
            row.total_pipelined,
            row.linear_nonpipelined,
            row.linear_pipelined
        ));
    }
    s
}

/// Renders Fig. 6a.
pub fn fig6a(p: &DeviceProfile) -> String {
    let mut s = String::from(
        "Fig. 6a: inference speedup over SGX-only\n\n\
         Model          Slalom  DarKnight(4)  Slalom+Integ  DarKnight(3)+Integ\n",
    );
    for row in experiments::fig6a(p) {
        s.push_str(&format!(
            "{:<13} {:>7.2}  {:>12.2}  {:>12.2}  {:>18.2}\n",
            row.model, row.slalom, row.darknight4, row.slalom_integrity, row.darknight3_integrity
        ));
    }
    s
}

/// Renders Fig. 6b.
pub fn fig6b(p: &DeviceProfile) -> String {
    let f = experiments::fig6b(p);
    let mut s = String::from(
        "Fig. 6b: VGG16 inference per-phase speedup relative to DarKnight(1)\n\n",
    );
    s.push_str("Phase        ");
    for k in &f.ks {
        s.push_str(&format!("  K={k:<3}"));
    }
    s.push('\n');
    for (name, vals) in &f.series {
        s.push_str(&format!("{name:<13}"));
        for v in vals {
            s.push_str(&format!(" {v:>5.2} "));
        }
        s.push('\n');
    }
    s
}

/// Renders Fig. 7.
pub fn fig7(p: &DeviceProfile) -> String {
    let mut s = String::from(
        "Fig. 7: SGX-only VGG16 training latency vs threads (rel. 1 thread)\n\n\
         Threads   Latency\n",
    );
    for (t, l) in experiments::fig7(p) {
        s.push_str(&format!("{t:>7}   {l:>7.2}\n"));
    }
    s
}

/// Renders measured serving configurations ([`crate::serving`]) as one
/// table: throughput, queue-latency percentiles, batch fill, and
/// shed/served counts per row.
pub fn serving_table(rows: &[crate::ServingRow]) -> String {
    let mut s = String::from(
        "Serving: measured throughput and queue latency per configuration\n\n\
         Configuration          req/s   p50(ms)   p95(ms)   fill  served   shed\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<20} {:>8.1}  {:>8.2}  {:>8.2}  {:>4.0}%  {:>6}  {:>5}\n",
            r.label,
            r.throughput_rps,
            r.p50_queue_ms,
            r.p95_queue_ms,
            r.batch_fill * 100.0,
            r.served,
            r.shed
        ));
    }
    s
}

/// Renders measured pipelined-vs-sequential runs ([`crate::PipelineRow`])
/// next to the cost model's analytical Fig.-5 overlap gain, so the two
/// views of §7.1 pipelining cross-check each other.
pub fn pipeline_table(rows: &[crate::PipelineRow]) -> String {
    let mut s = String::from(
        "Pipelining: measured engine speedup vs analytical Fig.-5 overlap gain\n\n\
         Workload                        batches   seq(ms)  pipe(ms)  measured  analytical\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<30} {:>8}  {:>8.1}  {:>8.1}  {:>7.2}x  {:>6.2}x ({})\n",
            r.label,
            r.batches,
            r.sequential_ms,
            r.pipelined_ms,
            r.measured_speedup,
            r.analytical_speedup,
            r.analytical_arch
        ));
    }
    s
}

/// Renders the headline summary.
pub fn summary(p: &DeviceProfile) -> String {
    let s = experiments::summary(p);
    format!(
        "Summary (paper: 6.5x avg training, 12.5x avg inference)\n\n\
         Average training speedup:  {:.2}x\n\
         Average inference speedup: {:.2}x\n",
        s.avg_training_speedup, s.avg_inference_speedup
    )
}

/// Renders every table/figure in order.
pub fn full_report(p: &DeviceProfile) -> String {
    [
        table1(p),
        table2(),
        table3(p),
        table4(p),
        fig3(p),
        fig5(p),
        fig6a(p),
        fig6b(p),
        fig7(p),
        summary(p),
    ]
    .join("\n----------------------------------------------------------------\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_table_renders_rows() {
        let rows = vec![
            crate::ServingRow {
                label: "pool=2 K=4".into(),
                throughput_rps: 87.3,
                p50_queue_ms: 0.8,
                p95_queue_ms: 3.1,
                batch_fill: 0.75,
                served: 64,
                shed: 2,
            },
            crate::ServingRow {
                label: "direct session".into(),
                throughput_rps: 40.0,
                p50_queue_ms: 0.0,
                p95_queue_ms: 0.0,
                batch_fill: 1.0,
                served: 64,
                shed: 0,
            },
        ];
        let s = serving_table(&rows);
        assert!(s.contains("pool=2 K=4"));
        assert!(s.contains("direct session"));
        assert!(s.contains("75%"));
        assert!(s.contains("87.3"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn pipeline_table_renders_measured_and_analytical() {
        let rows = vec![crate::PipelineRow {
            label: "train/mini_vgg modeled-gpu".into(),
            batches: 12,
            sequential_ms: 840.0,
            pipelined_ms: 430.0,
            measured_speedup: 1.95,
            analytical_speedup: 1.42,
            analytical_arch: "VGG16".into(),
        }];
        let s = pipeline_table(&rows);
        assert!(s.contains("train/mini_vgg modeled-gpu"));
        assert!(s.contains("1.95x"));
        assert!(s.contains("1.42x (VGG16)"));
    }

    #[test]
    fn analytical_pipeline_gain_is_positive_overlap() {
        let p = DeviceProfile::calibrated();
        let b = crate::cost::darknight_training(&dk_nn::arch::vgg16(), &p, 2, 1, false);
        let g = b.pipeline_gain();
        assert!(g > 1.0 && g < 3.0, "gain {g}");
    }

    #[test]
    fn full_report_renders_every_section() {
        let p = DeviceProfile::calibrated();
        let r = full_report(&p);
        for needle in [
            "Table 1", "Table 2", "Table 3", "Table 4", "Fig. 3", "Fig. 5", "Fig. 6a",
            "Fig. 6b", "Fig. 7", "Summary",
        ] {
            assert!(r.contains(needle), "missing section {needle}");
        }
        assert!(r.contains("VGG16"));
        assert!(r.contains("DarKnight"));
    }
}
