//! Serving-side performance summaries.
//!
//! The analytical model in [`crate::cost`] predicts per-step times; a
//! running `dk_serve` deployment *measures* them. This module is the
//! meeting point: a [`ServingRow`] is the renderer-facing snapshot of
//! one serving configuration (produced by `dk_serve::ServerMetrics`,
//! or hand-built for what-if rows), and [`crate::report::serving_table`]
//! prints a set of them in the same row format as the paper tables.
//!
//! The struct lives here rather than in `dk_serve` so the report layer
//! has no dependency on the serving runtime (mirroring how the other
//! report sections consume plain experiment rows).

/// One measured (or modeled) serving configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRow {
    /// Label for the row (e.g. `"pool=4 K=4"` or `"direct session"`).
    pub label: String,
    /// Sustained requests per second over the measurement window.
    pub throughput_rps: f64,
    /// Median queue wait (submission → batch dispatch), milliseconds.
    pub p50_queue_ms: f64,
    /// 95th-percentile queue wait, milliseconds.
    pub p95_queue_ms: f64,
    /// Real rows / total rows across dispatched virtual batches, in
    /// `[0, 1]`; `1.0` means every batch was full (no padding).
    pub batch_fill: f64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_is_plain_data() {
        let row = ServingRow {
            label: "pool=2 K=4".into(),
            throughput_rps: 120.5,
            p50_queue_ms: 1.2,
            p95_queue_ms: 4.7,
            batch_fill: 0.875,
            served: 64,
            shed: 3,
        };
        assert_eq!(row.clone(), row);
    }
}
