//! Device throughput profile, calibrated to the paper's Table 1.
//!
//! Table 1 (VGG16 on ImageNet, GTX 1080 Ti vs SGX Coffee Lake) is the
//! calibration anchor:
//!
//! | op        | fwd speedup | bwd speedup |
//! |-----------|-------------|-------------|
//! | linear    | 126.85      | 149.13      |
//! | maxpool   | 11.86       | 5.47        |
//! | relu      | 119.60      | 6.59        |
//!
//! We pick plausible absolute SGX rates (enclave memory encryption makes
//! SGX strongly bandwidth-bound) and set GPU rates via the ratios. Every
//! other experiment then *derives* from these plus op counts.

/// Throughputs and platform constants. Rates are GMAC/s for linear ops
/// and Gelem/s for element-wise ops; bandwidths in GB/s.
#[derive(Debug, Clone, Copy)]
pub struct DeviceProfile {
    /// SGX linear-op throughput, forward (GMAC/s).
    pub sgx_linear_fwd: f64,
    /// SGX linear-op throughput, backward (GMAC/s).
    pub sgx_linear_bwd: f64,
    /// GPU linear-op throughput, forward (GMAC/s).
    pub gpu_linear_fwd: f64,
    /// GPU linear-op throughput, backward (GMAC/s).
    pub gpu_linear_bwd: f64,
    /// SGX depthwise/grouped-conv throughput (GMAC/s) — depthwise convs
    /// are memory-bound and collapse under EPC encryption.
    pub sgx_linear_dw: f64,
    /// GPU depthwise/grouped-conv throughput (GMAC/s) — GPUs also lose
    /// most of their advantage on depthwise (low arithmetic intensity),
    /// which is why the paper calls MobileNet its worst case.
    pub gpu_linear_dw: f64,
    /// SGX ReLU forward (Gelem/s).
    pub sgx_relu_fwd: f64,
    /// SGX ReLU backward (Gelem/s).
    pub sgx_relu_bwd: f64,
    /// GPU ReLU forward (Gelem/s).
    pub gpu_relu_fwd: f64,
    /// GPU ReLU backward (Gelem/s).
    pub gpu_relu_bwd: f64,
    /// SGX max-pool forward (Gelem/s).
    pub sgx_pool_fwd: f64,
    /// SGX max-pool backward (Gelem/s).
    pub sgx_pool_bwd: f64,
    /// GPU max-pool forward (Gelem/s).
    pub gpu_pool_fwd: f64,
    /// GPU max-pool backward (Gelem/s).
    pub gpu_pool_bwd: f64,
    /// SGX batch-norm throughput (Gelem/s); BN is never offloaded.
    pub sgx_batchnorm: f64,
    /// SGX elementwise-add throughput (Gelem/s).
    pub sgx_add: f64,
    /// TEE masking (encode/decode) bandwidth, Gelem/s of field elements
    /// touched — SGX memory-encryption-bound, not MAC-bound.
    pub sgx_mask_bw: f64,
    /// TEE↔GPU link bandwidth (GB/s); the paper emulates 40 Gb/s
    /// InfiniBand = 5 GB/s.
    pub link_gb_s: f64,
    /// Wire bytes per tensor element (quantized values pack in 4 B).
    pub wire_bytes_per_elem: f64,
    /// Usable enclave memory (bytes).
    pub epc_bytes: f64,
    /// Exponent of the paging penalty `(ws/epc)^paging_alpha` applied to
    /// SGX-side work when the working set exceeds the EPC.
    pub paging_alpha: f64,
    /// Enclave sealing bandwidth (GB/s) — ChaCha+MAC plus EPC write-out.
    pub seal_gb_s: f64,
    /// Fixed overhead per seal/unseal call (seconds) — enclave
    /// transitions and page bookkeeping.
    pub seal_fixed_s: f64,
    /// Rate relief for TEE ops under DarKnight's light memory footprint
    /// vs the everything-resident baseline (§7.1 reports 1.89× faster
    /// non-linear ops for DarKnight).
    pub sgx_light_relief: f64,
}

impl DeviceProfile {
    /// The calibrated profile (see module docs).
    ///
    /// Absolute SGX rates are chosen so that composing them with VGG16's
    /// op counts reproduces the paper's Table 1 *totals* (119.03 fwd /
    /// 124.56 bwd): the forward ReLU is EPC-bandwidth-bound (slow), the
    /// backward ReLU and pooling are cheap masked copies (fast) — which
    /// is also the only reading consistent with the paper's low measured
    /// GPU speedups for exactly those ops.
    pub fn calibrated() -> Self {
        let sgx_linear_fwd = 20.0; // GMAC/s, DNNL inside the enclave
        let sgx_linear_bwd = 20.0;
        let sgx_relu_fwd = 0.14; // Gelem/s, EPC-bandwidth bound
        let sgx_relu_bwd = 0.40;
        let sgx_pool_fwd = 5.0;
        let sgx_pool_bwd = 5.0;
        Self {
            sgx_linear_fwd,
            sgx_linear_bwd,
            gpu_linear_fwd: sgx_linear_fwd * 126.85,
            gpu_linear_bwd: sgx_linear_bwd * 149.13,
            sgx_linear_dw: 0.5,
            gpu_linear_dw: 30.0,
            sgx_relu_fwd,
            sgx_relu_bwd,
            gpu_relu_fwd: sgx_relu_fwd * 119.60,
            gpu_relu_bwd: sgx_relu_bwd * 6.59,
            sgx_pool_fwd,
            sgx_pool_bwd,
            gpu_pool_fwd: sgx_pool_fwd * 11.86,
            gpu_pool_bwd: sgx_pool_bwd * 5.47,
            sgx_batchnorm: 0.05,
            sgx_add: 0.15,
            sgx_mask_bw: 5.0,
            link_gb_s: 5.0,
            wire_bytes_per_elem: 4.0,
            epc_bytes: 93.0 * 1024.0 * 1024.0,
            paging_alpha: 1.4,
            seal_gb_s: 2.5,
            seal_fixed_s: 60e-6,
            sgx_light_relief: 1.89,
        }
    }

    /// Paging multiplier for an SGX working set of `ws` bytes.
    ///
    /// Piecewise: small overflows are penalized steeply (page-fault
    /// storms on the hot loop, `1 + 6·(r − 1)` for `r = ws/epc ≤ 2`),
    /// after which thrashing follows the power law `7·(r/2)^α`. The two
    /// branches are continuous at `r = 2` and monotone throughout.
    pub fn paging_multiplier(&self, ws: f64) -> f64 {
        let r = ws / self.epc_bytes;
        if r <= 1.0 {
            1.0
        } else if r <= 2.0 {
            1.0 + 6.0 * (r - 1.0)
        } else {
            7.0 * (r / 2.0).powf(self.paging_alpha)
        }
    }

    /// Enclave working set of DarKnight's masking stage for virtual
    /// batch `k` and a model whose largest activation has
    /// `max_act_elems` elements: `K` packed quantized inputs plus one
    /// streaming encoding buffer, plus ~20 MB of fixed runtime.
    pub fn masking_working_set(&self, k: usize, max_act_elems: f64) -> f64 {
        (k as f64 + 1.0) * max_act_elems * 4.0 + 26.0 * 1024.0 * 1024.0
    }

    /// Transfer time for `elems` tensor elements over the link.
    pub fn link_time(&self, elems: f64) -> f64 {
        elems * self.wire_bytes_per_elem / (self.link_gb_s * 1e9)
    }

    /// TEE masking time for `elems` field elements touched.
    pub fn mask_time(&self, elems: f64) -> f64 {
        elems / (self.sgx_mask_bw * 1e9)
    }

    /// Seal or unseal time for `bytes` payload bytes.
    pub fn seal_time(&self, bytes: f64) -> f64 {
        bytes / (self.seal_gb_s * 1e9) + self.seal_fixed_s
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ratios_are_encoded() {
        let p = DeviceProfile::calibrated();
        assert!((p.gpu_linear_fwd / p.sgx_linear_fwd - 126.85).abs() < 1e-6);
        assert!((p.gpu_linear_bwd / p.sgx_linear_bwd - 149.13).abs() < 1e-6);
        assert!((p.gpu_relu_fwd / p.sgx_relu_fwd - 119.60).abs() < 1e-6);
        assert!((p.gpu_relu_bwd / p.sgx_relu_bwd - 6.59).abs() < 1e-6);
        assert!((p.gpu_pool_fwd / p.sgx_pool_fwd - 11.86).abs() < 1e-6);
        assert!((p.gpu_pool_bwd / p.sgx_pool_bwd - 5.47).abs() < 1e-6);
    }

    #[test]
    fn paging_is_identity_below_epc() {
        let p = DeviceProfile::calibrated();
        assert_eq!(p.paging_multiplier(p.epc_bytes * 0.5), 1.0);
        assert_eq!(p.paging_multiplier(p.epc_bytes), 1.0);
        assert!(p.paging_multiplier(p.epc_bytes * 2.0) > 1.5);
    }

    #[test]
    fn paging_grows_monotonically() {
        let p = DeviceProfile::calibrated();
        let mut prev = 0.0;
        for f in [1.0, 1.5, 2.0, 4.0, 8.0] {
            let m = p.paging_multiplier(p.epc_bytes * f);
            assert!(m >= prev);
            prev = m;
        }
    }

    #[test]
    fn small_overflow_is_penalized_steeply() {
        let p = DeviceProfile::calibrated();
        // 10% overflow already costs >1.2x (fault storm on the hot loop).
        assert!(p.paging_multiplier(p.epc_bytes * 1.1) > 1.2);
    }

    #[test]
    fn vgg16_masking_set_fits_at_k4_not_k5() {
        // The Fig. 3 / Fig. 6b crossover: VGG16's largest activation is
        // 64x224x224 = 3.21M elements.
        let p = DeviceProfile::calibrated();
        let act = 64.0 * 224.0 * 224.0;
        assert!(p.masking_working_set(4, act) <= p.epc_bytes);
        assert!(p.masking_working_set(5, act) > p.epc_bytes);
    }

    #[test]
    fn link_time_scales() {
        let p = DeviceProfile::calibrated();
        // 5 GB/s, 4 B/elem: 1.25e9 elems/s.
        let t = p.link_time(1.25e9);
        assert!((t - 1.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn seal_has_fixed_floor() {
        let p = DeviceProfile::calibrated();
        assert!(p.seal_time(0.0) >= p.seal_fixed_s);
        assert!(p.seal_time(1e9) > p.seal_time(1e6));
    }
}
