//! Prime-field arithmetic and supporting linear algebra for DarKnight.
//!
//! DarKnight's privacy scheme (Hashemi et al., MICRO '21) operates over the
//! finite field `F_p` with `p = 2^25 − 39`, the largest 25-bit prime. This
//! crate provides:
//!
//! * [`Fp`] — a constant-modulus prime-field scalar with full arithmetic,
//!   and the two concrete fields used by the framework:
//!   [`F25`] (data plane, the paper's prime) and [`F61`] (MAC plane).
//! * [`FieldMatrix`] — dense matrices over `F_p` with multiplication,
//!   Gauss–Jordan inversion, rank, and submatrix extraction.
//! * [`vandermonde`] — Vandermonde/MDS coefficient generators used to build
//!   encoding matrices whose every square submatrix is invertible (the
//!   collusion-tolerance requirement of §5 of the paper).
//! * [`quant`] — the fixed-point quantization pipeline of Algorithm 1
//!   (scale by `2^l`, map into the field, centered lift on decode).
//!
//! # Example
//!
//! ```
//! use dk_field::{F25, FieldMatrix};
//!
//! let a = F25::new(7);
//! let b = F25::new(12);
//! assert_eq!((a * b).value(), 84);
//! assert_eq!(a * a.inv().unwrap(), F25::ONE);
//!
//! // A random invertible matrix round-trips through its inverse.
//! let m = FieldMatrix::<{ dk_field::P25 }>::identity(3);
//! assert_eq!(&m * &m, m);
//! ```

pub mod fp;
pub mod matrix;
pub mod quant;
pub mod rng;
pub mod vandermonde;

pub use fp::{Fp, F25, F61, P25, P61};
pub use matrix::FieldMatrix;
pub use quant::{QuantConfig, QuantError};
pub use rng::{derive_seed, FieldRng};
