//! Constant-modulus prime-field scalars.
//!
//! [`Fp<P>`] stores a canonical representative in `[0, P)` as a `u64`.
//! Any modulus below `2^64` is supported, and the reduction strategy is
//! chosen per modulus at compile time: Barrett reduction (multiply +
//! shift, no hardware division) for `P < 2^32`, shift-add folding for
//! the Mersenne prime `2^61 − 1`, and a generic `u128 %` fallback
//! otherwise. DarKnight uses two concrete fields:
//!
//! * [`F25`] with `p = 2^25 − 39 = 33_554_393` — the paper's data-plane
//!   prime (§5: "the largest prime with 25 bits"), chosen so that products
//!   of two canonical elements fit comfortably in accelerator arithmetic.
//! * [`F61`] with `p = 2^61 − 1` (Mersenne) — used by the TEE simulator for
//!   its polynomial MAC and toy key exchange.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The DarKnight data-plane prime `2^25 − 39`, the largest 25-bit prime.
pub const P25: u64 = (1 << 25) - 39;

/// The Mersenne prime `2^61 − 1` used for MAC/key-exchange simulation.
pub const P61: u64 = (1 << 61) - 1;

/// An element of the prime field `F_P`, stored canonically in `[0, P)`.
///
/// All arithmetic is implemented with `u128` intermediates so it is exact
/// for any prime modulus `P < 2^64`. The type is `Copy` and 8 bytes, so
/// large tensors of field elements are cache-friendly.
///
/// # Example
///
/// ```
/// use dk_field::F25;
///
/// let x = F25::from_i64(-3); // negative values map to p - 3
/// assert_eq!(x.to_centered_i64(), -3);
/// assert_eq!(x + F25::new(3), F25::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Fp<const P: u64>(u64);

/// DarKnight's data-plane field (`p = 2^25 − 39`).
pub type F25 = Fp<P25>;

/// The MAC-plane field (`p = 2^61 − 1`).
pub type F61 = Fp<P61>;

impl<const P: u64> Fp<P> {
    /// The additive identity.
    pub const ZERO: Self = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Self = Fp(1);
    /// The field modulus.
    pub const MODULUS: u64 = P;

    /// Whether `P` is the Mersenne prime `2^61 − 1`, which reduces with
    /// shift-and-add instead of division.
    const IS_MERSENNE_61: bool = P == P61;
    /// Whether `P < 2^32`, so products of canonical elements fit in a
    /// `u64` and Barrett reduction applies to full-width `u64` values.
    const FITS_BARRETT_U64: bool = P < (1 << 32);
    /// Barrett reciprocal `⌊2^64 / P⌋` (used when `P < 2^32`).
    const BARRETT_MU: u64 = ((1u128 << 64) / P as u128) as u64;

    /// Reduces an arbitrary `u64` modulo `P` without a hardware division
    /// when the modulus allows it.
    ///
    /// * `P < 2^32`: Barrett reduction — one widening multiply, one
    ///   shift, one multiply-subtract and a conditional subtract.
    /// * `P = 2^61 − 1`: Mersenne shift-add folding.
    /// * otherwise: the generic `%` fallback.
    ///
    /// The branch on the modulus class is resolved at compile time, so
    /// each instantiation contains exactly one reduction strategy.
    #[inline]
    pub fn reduce_u64(x: u64) -> Self {
        if Self::FITS_BARRETT_U64 {
            // q = ⌊x·µ / 2^64⌋ ∈ {⌊x/P⌋ − 1, ⌊x/P⌋}, so x − q·P ∈ [0, 2P).
            let q = ((x as u128 * Self::BARRETT_MU as u128) >> 64) as u64;
            let mut r = x - q * P;
            if r >= P {
                r -= P;
            }
            Fp(r)
        } else if Self::IS_MERSENNE_61 {
            let mut v = (x & P61) + (x >> 61);
            if v >= P {
                v -= P;
            }
            Fp(v)
        } else {
            Fp(x % P)
        }
    }

    /// Reduces an arbitrary `u128` modulo `P`.
    ///
    /// For the Mersenne modulus this is pure shift-add folding; for
    /// Barrett moduli values below `2^64` take the fast `u64` path and
    /// only genuinely 128-bit values pay for a wide division.
    #[inline]
    pub fn reduce_u128(x: u128) -> Self {
        if Self::IS_MERSENNE_61 {
            let mask = P61 as u128;
            let mut v = (x & mask) + (x >> 61);
            while v >> 61 != 0 {
                v = (v & mask) + (v >> 61);
            }
            let mut r = v as u64;
            if r >= P {
                r -= P;
            }
            Fp(r)
        } else if x >> 64 == 0 {
            Self::reduce_u64(x as u64)
        } else {
            Fp((x % P as u128) as u64)
        }
    }

    /// Creates a field element, reducing `v` modulo `P`.
    #[inline]
    pub fn new(v: u64) -> Self {
        Self::reduce_u64(v)
    }

    /// Creates a field element from a canonical representative.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v >= P`.
    #[inline]
    pub fn from_canonical(v: u64) -> Self {
        debug_assert!(v < P, "non-canonical representative {v} for modulus {P}");
        Fp(v)
    }

    /// Maps a signed integer into the field: negatives become `P − |v| mod P`.
    ///
    /// This is the `Field` procedure of Algorithm 1 in the paper.
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        let m = v.rem_euclid(P as i64);
        Fp(m as u64)
    }

    /// Maps a signed 128-bit integer into the field.
    #[inline]
    pub fn from_i128(v: i128) -> Self {
        let m = v.rem_euclid(P as i128);
        Fp(m as u64)
    }

    /// Returns the canonical representative in `[0, P)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Centered lift: returns the representative in `(−P/2, P/2]`.
    ///
    /// The paper's decoder "subtracts p from all the elements larger than
    /// p/2 to restore negative numbers" (§5, Quantization); this is that
    /// operation.
    #[inline]
    pub fn to_centered_i64(self) -> i64 {
        if self.0 > P / 2 {
            self.0 as i64 - P as i64
        } else {
            self.0 as i64
        }
    }

    /// True if this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Raises `self` to the power `e` by square-and-multiply.
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero, which has no inverse.
    #[inline]
    pub fn inv(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(P - 2))
        }
    }

    /// Computes `a*b + c` with a single reduction.
    #[inline]
    pub fn mul_add(a: Self, b: Self, c: Self) -> Self {
        if Self::FITS_BARRETT_U64 {
            // a·b ≤ (2^32−1)^2 and c < 2^32, so the sum fits in a u64.
            Self::reduce_u64(a.0 * b.0 + c.0)
        } else {
            Self::reduce_u128(a.0 as u128 * b.0 as u128 + c.0 as u128)
        }
    }

    /// Batch inversion (Montgomery's trick): inverts every nonzero element
    /// of `xs` in place with one field inversion and `3n` multiplications.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn batch_invert(xs: &mut [Self]) {
        Self::batch_invert_with(xs, &mut Vec::with_capacity(xs.len()));
    }

    /// Scratch-reusing variant of [`Fp::batch_invert`]: the prefix
    /// products go into the caller's `prefix` buffer (cleared first),
    /// so warm callers invert without touching the allocator. Results
    /// are bit-identical to [`Fp::batch_invert`].
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn batch_invert_with(xs: &mut [Self], prefix: &mut Vec<Self>) {
        if xs.is_empty() {
            return;
        }
        prefix.clear();
        let mut acc = Self::ONE;
        for &x in xs.iter() {
            assert!(!x.is_zero(), "batch_invert: zero element");
            prefix.push(acc);
            acc *= x;
        }
        let mut inv_acc = acc.inv().expect("product of nonzeros is nonzero");
        for i in (0..xs.len()).rev() {
            let orig = xs[i];
            xs[i] = inv_acc * prefix[i];
            inv_acc *= orig;
        }
    }
}

impl<const P: u64> Default for Fp<P> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const P: u64> fmt::Debug for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp<{P}>({})", self.0)
    }
}

impl<const P: u64> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u64> Add for Fp<P> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let s = self.0 + rhs.0;
        Fp(if s >= P { s - P } else { s })
    }
}

impl<const P: u64> AddAssign for Fp<P> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const P: u64> Sub for Fp<P> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let s = self.0 + P - rhs.0;
        Fp(if s >= P { s - P } else { s })
    }
}

impl<const P: u64> SubAssign for Fp<P> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const P: u64> Mul for Fp<P> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        if Self::FITS_BARRETT_U64 {
            // Both operands are canonical (< 2^32), so the product fits
            // in a u64 and Barrett reduction avoids any division.
            Self::reduce_u64(self.0 * rhs.0)
        } else {
            Self::reduce_u128(self.0 as u128 * rhs.0 as u128)
        }
    }
}

impl<const P: u64> MulAssign for Fp<P> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const P: u64> Div for Fp<P> {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    // Field division IS multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv().expect("division by zero field element")
    }
}

impl<const P: u64> DivAssign for Fp<P> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<const P: u64> Neg for Fp<P> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Fp(P - self.0)
        }
    }
}

impl<const P: u64> Sum for Fp<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<const P: u64> Product for Fp<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl<const P: u64> From<u64> for Fp<P> {
    fn from(v: u64) -> Self {
        Self::new(v)
    }
}

impl<const P: u64> From<u32> for Fp<P> {
    fn from(v: u32) -> Self {
        Self::new(v as u64)
    }
}

impl<const P: u64> From<i64> for Fp<P> {
    fn from(v: i64) -> Self {
        Self::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_prime_sized() {
        assert_eq!(P25, 33_554_393);
        assert_eq!(P61, 2_305_843_009_213_693_951);
    }

    #[test]
    fn add_wraps() {
        let a = F25::new(P25 - 1);
        assert_eq!(a + F25::ONE, F25::ZERO);
        assert_eq!(a + F25::new(2), F25::ONE);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(F25::ZERO - F25::ONE, F25::new(P25 - 1));
    }

    #[test]
    fn neg_zero_is_zero() {
        assert_eq!(-F25::ZERO, F25::ZERO);
        assert_eq!(-F25::ONE, F25::new(P25 - 1));
    }

    #[test]
    fn mul_matches_u128_reference() {
        let a = F25::new(12_345_678);
        let b = F25::new(23_456_789);
        let expect = (12_345_678u128 * 23_456_789u128 % P25 as u128) as u64;
        assert_eq!((a * b).value(), expect);
    }

    #[test]
    fn fermat_inverse() {
        for v in [1u64, 2, 3, 255, 65_537, P25 - 1] {
            let x = F25::new(v);
            assert_eq!(x * x.inv().unwrap(), F25::ONE, "v={v}");
        }
        assert!(F25::ZERO.inv().is_none());
    }

    #[test]
    fn inverse_in_f61() {
        let x = F61::new(1_234_567_890_123);
        assert_eq!(x * x.inv().unwrap(), F61::ONE);
    }

    #[test]
    fn from_i64_negative() {
        let x = F25::from_i64(-1);
        assert_eq!(x.value(), P25 - 1);
        assert_eq!(x.to_centered_i64(), -1);
    }

    #[test]
    fn centered_lift_boundaries() {
        assert_eq!(F25::new(P25 / 2).to_centered_i64(), (P25 / 2) as i64);
        assert_eq!(F25::new(P25 / 2 + 1).to_centered_i64(), -((P25 / 2) as i64));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let x = F25::new(3);
        let mut acc = F25::ONE;
        for e in 0..20u64 {
            assert_eq!(x.pow(e), acc);
            acc *= x;
        }
    }

    #[test]
    fn batch_invert_matches_single() {
        let mut xs: Vec<F25> = (1..100u64).map(F25::new).collect();
        let expect: Vec<F25> = xs.iter().map(|x| x.inv().unwrap()).collect();
        F25::batch_invert(&mut xs);
        assert_eq!(xs, expect);
    }

    #[test]
    fn batch_invert_empty_ok() {
        let mut xs: Vec<F25> = vec![];
        F25::batch_invert(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn batch_invert_rejects_zero() {
        let mut xs = vec![F25::ONE, F25::ZERO];
        F25::batch_invert(&mut xs);
    }

    #[test]
    fn sum_and_product_traits() {
        let xs = [F25::new(2), F25::new(3), F25::new(4)];
        assert_eq!(xs.iter().copied().sum::<F25>(), F25::new(9));
        assert_eq!(xs.iter().copied().product::<F25>(), F25::new(24));
    }

    #[test]
    fn mul_add_single_reduction() {
        let a = F25::new(P25 - 2);
        let b = F25::new(P25 - 3);
        let c = F25::new(P25 - 5);
        assert_eq!(F25::mul_add(a, b, c), a * b + c);
    }

    #[test]
    fn division() {
        let a = F25::new(84);
        let b = F25::new(12);
        assert_eq!(a / b, F25::new(7));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<F25>();
        assert_send_sync::<F61>();
    }

    #[test]
    fn barrett_reduce_u64_matches_modulo() {
        // Walk the full u64 range with a coarse stride plus the edges of
        // every multiple-of-P window near powers of two.
        let mut xs = vec![0u64, 1, P25 - 1, P25, P25 + 1, 2 * P25 - 1, u64::MAX, u64::MAX - 1];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            xs.push(x);
        }
        for &v in &xs {
            assert_eq!(F25::reduce_u64(v).value(), v % P25, "v={v}");
        }
    }

    #[test]
    fn mersenne_reduce_matches_modulo() {
        let mut xs = vec![0u128, 1, P61 as u128, P61 as u128 + 1, (1u128 << 61), u128::MAX, u64::MAX as u128];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            xs.push(x as u128 * x as u128);
        }
        for &v in &xs {
            assert_eq!(F61::reduce_u128(v).value(), (v % P61 as u128) as u64, "v={v}");
            assert_eq!(F61::reduce_u64(v as u64).value(), v as u64 % P61, "v={v}");
        }
    }

    #[test]
    fn reduce_u128_f25_matches_modulo() {
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let wide = x as u128 * x.rotate_left(17) as u128;
            assert_eq!(F25::reduce_u128(wide).value(), (wide % P25 as u128) as u64);
        }
    }

    #[test]
    fn mul_exhaustive_boundary_products() {
        // Products of near-modulus operands stress the Barrett bound.
        for a in (P25 - 50)..P25 {
            for b in (P25 - 50)..P25 {
                let expect = (a as u128 * b as u128 % P25 as u128) as u64;
                assert_eq!((F25::from_canonical(a) * F25::from_canonical(b)).value(), expect);
            }
        }
        for a in (P61 - 20)..P61 {
            for b in (P61 - 20)..P61 {
                let expect = (a as u128 * b as u128 % P61 as u128) as u64;
                assert_eq!((F61::from_canonical(a) * F61::from_canonical(b)).value(), expect);
            }
        }
    }
}
