//! Uniform sampling of field elements.
//!
//! All randomness in the framework flows through [`FieldRng`], a thin
//! wrapper over a seedable ChaCha PRNG, so that every experiment is
//! reproducible from a single seed. Sampling uses rejection to guarantee a
//! perfectly uniform distribution over `[0, P)` — a biased sampler would
//! weaken the one-time-pad argument of the paper's Lemma 1.

use crate::fp::Fp;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Deterministically mixes a seed with a label into a new seed
/// (splitmix64 finalizer over the xor-folded pair).
///
/// This is the workspace's *stateless* seed-derivation primitive: unlike
/// [`FieldRng::fork`], which consumes state from a running stream,
/// `derive_seed(seed, label)` depends only on its arguments. The
/// pipelined executor leans on this to give every `(virtual batch,
/// layer)` pair its own mask stream no matter which thread — or in what
/// order — the batch is processed, which is what makes overlapped
/// execution bit-for-bit identical to sequential execution.
pub fn derive_seed(seed: u64, label: u64) -> u64 {
    let mut z = seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable source of uniform field elements.
///
/// # Example
///
/// ```
/// use dk_field::{FieldRng, F25};
///
/// let mut rng = FieldRng::seed_from(42);
/// let x: F25 = rng.uniform();
/// let y: F25 = rng.uniform();
/// assert_ne!(x, y); // overwhelmingly likely
/// ```
#[derive(Debug, Clone)]
pub struct FieldRng {
    inner: ChaCha12Rng,
}

impl FieldRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self { inner: ChaCha12Rng::seed_from_u64(seed) }
    }

    /// Creates a generator from a statelessly derived seed — shorthand
    /// for `seed_from(derive_seed(seed, label))`.
    pub fn derived(seed: u64, label: u64) -> Self {
        Self::seed_from(derive_seed(seed, label))
    }

    /// Derives an independent child generator; used to give each subsystem
    /// (encoder, noise, TEE, workers) its own stream from one master seed.
    pub fn fork(&mut self, label: u64) -> Self {
        let s = self.inner.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed_from(s)
    }

    /// Samples a uniformly random element of `F_P` (rejection sampling).
    pub fn uniform<const P: u64>(&mut self) -> Fp<P> {
        // Rejection zone: the largest multiple of P below 2^64.
        let zone = u64::MAX - u64::MAX % P;
        loop {
            let v = self.inner.next_u64();
            if v < zone {
                return Fp::new(v % P);
            }
        }
    }

    /// Samples a uniformly random *nonzero* element of `F_P`.
    pub fn uniform_nonzero<const P: u64>(&mut self) -> Fp<P> {
        loop {
            let x = self.uniform::<P>();
            if !x.is_zero() {
                return x;
            }
        }
    }

    /// Fills a vector with `n` uniform field elements.
    pub fn uniform_vec<const P: u64>(&mut self, n: usize) -> Vec<Fp<P>> {
        (0..n).map(|_| self.uniform()).collect()
    }

    /// Appends `n` uniform field elements to a caller-provided buffer —
    /// the same draw sequence as [`FieldRng::uniform_vec`], without the
    /// allocation (hot paths pass workspace-recycled buffers).
    pub fn uniform_extend<const P: u64>(&mut self, n: usize, out: &mut Vec<Fp<P>>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.uniform());
        }
    }

    /// Samples a uniform `f32` in `[lo, hi)`; used for float-domain
    /// initialization and synthetic data.
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Samples an approximately standard-normal `f32` (sum of uniforms).
    pub fn normal_f32(&mut self) -> f32 {
        // Irwin–Hall with 12 uniforms: mean 6, variance 1.
        let s: f32 = (0..12).map(|_| self.inner.gen::<f32>()).sum();
        s - 6.0
    }

    /// Samples a uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Returns a raw `u64` from the underlying stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{F25, P25};

    #[test]
    fn deterministic_from_seed() {
        let mut a = FieldRng::seed_from(7);
        let mut b = FieldRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform::<P25>(), b.uniform::<P25>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FieldRng::seed_from(1);
        let mut b = FieldRng::seed_from(2);
        let same = (0..64).filter(|_| a.uniform::<P25>() == b.uniform::<P25>()).count();
        assert!(same < 4, "streams should be independent, got {same} collisions");
    }

    #[test]
    fn derive_seed_is_stateless_and_label_sensitive() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
        let mut a = FieldRng::derived(9, 1);
        let mut b = FieldRng::derived(9, 2);
        let same = (0..64).filter(|_| a.uniform::<P25>() == b.uniform::<P25>()).count();
        assert!(same < 4, "derived streams should be independent, got {same}");
    }

    #[test]
    fn fork_is_independent() {
        let mut root = FieldRng::seed_from(9);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.uniform::<P25>() == c2.uniform::<P25>()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_is_in_range() {
        let mut rng = FieldRng::seed_from(3);
        for _ in 0..10_000 {
            let x: F25 = rng.uniform();
            assert!(x.value() < P25);
        }
    }

    #[test]
    fn nonzero_never_zero() {
        let mut rng = FieldRng::seed_from(4);
        for _ in 0..1_000 {
            assert!(!rng.uniform_nonzero::<P25>().is_zero());
        }
    }

    #[test]
    fn uniformity_chi_square_rough() {
        // 16 buckets over F_p; chi-square should be near 15 for uniform.
        let mut rng = FieldRng::seed_from(5);
        let n = 64_000usize;
        let buckets = 16usize;
        let mut counts = vec![0usize; buckets];
        for _ in 0..n {
            let x: F25 = rng.uniform();
            let b = (x.value() as u128 * buckets as u128 / P25 as u128) as usize;
            counts[b] += 1;
        }
        let expected = n as f64 / buckets as f64;
        let chi2: f64 =
            counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
        // df = 15; P(chi2 > 40) < 0.001 — generous bound to avoid flakiness.
        assert!(chi2 < 40.0, "chi2 = {chi2}");
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = FieldRng::seed_from(6);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal_f32()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }
}
