//! Dense matrices over a prime field.
//!
//! These matrices carry DarKnight's encoding coefficients: the secret
//! matrix `A` (and its blocks `A1`, `A2`), the public matrix `B`, and the
//! secret diagonal `Γ`. The sizes involved are tiny — proportional to the
//! *virtual batch size* `K` (typically 2–8), never to the model — so a
//! straightforward `O(n^3)` Gauss–Jordan inverse is exactly right
//! (the paper makes the same observation in §4.2, "DarKnight Training
//! Complexity").

use crate::fp::Fp;
use crate::rng::FieldRng;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix over `F_P`.
///
/// # Example
///
/// ```
/// use dk_field::{FieldMatrix, P25, F25};
///
/// let mut m = FieldMatrix::<P25>::zeros(2, 2);
/// m[(0, 0)] = F25::new(2);
/// m[(1, 1)] = F25::new(3);
/// let inv = m.inverse().unwrap();
/// assert_eq!(&m * &inv, FieldMatrix::<P25>::identity(2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct FieldMatrix<const P: u64> {
    rows: usize,
    cols: usize,
    data: Vec<Fp<P>>,
}

impl<const P: u64> FieldMatrix<P> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![Fp::ZERO; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Fp::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major element vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Fp<P>>) -> Self {
        assert_eq!(data.len(), rows * cols, "element count must match dimensions");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Fp<P>) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a diagonal matrix from the given entries.
    pub fn diagonal(entries: &[Fp<P>]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Samples a matrix with independent uniform entries.
    pub fn random(rows: usize, cols: usize, rng: &mut FieldRng) -> Self {
        Self::from_vec(rows, cols, rng.uniform_vec(rows * cols))
    }

    /// Samples a uniformly random *invertible* square matrix by rejection,
    /// returning it **together with its inverse**.
    ///
    /// The rejection test *is* a full Gauss–Jordan inversion, so throwing
    /// the inverse away (as an earlier revision did) forced every caller
    /// that needed `M⁻¹` to invert twice. For DarKnight's field
    /// (`p ≈ 2^25`) a uniform square matrix is singular with probability
    /// ≈ `1/p`, so this almost never retries.
    pub fn random_invertible(n: usize, rng: &mut FieldRng) -> (Self, Self) {
        loop {
            let m = Self::random(n, n, rng);
            if let Some(inv) = m.inverse() {
                return (m, inv);
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major access to the elements.
    pub fn as_slice(&self) -> &[Fp<P>] {
        &self.data
    }

    /// Flat row-major mutable access to the elements — for callers that
    /// refill a fixed-shape matrix in place (the per-batch coefficient
    /// regeneration path).
    pub fn as_mut_slice(&mut self) -> &mut [Fp<P>] {
        &mut self.data
    }

    /// A single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[Fp<P>] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies a column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<Fp<P>> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Extracts the sub-matrix of the given rows and columns (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Self {
        Self::from_fn(row_idx.len(), col_idx.len(), |r, c| self[(row_idx[r], col_idx[c])])
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hconcat requires equal row counts");
        Self::from_fn(self.rows, self.cols + other.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                other[(r, c - self.cols)]
            }
        })
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vconcat(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vconcat requires equal column counts");
        Self::from_fn(self.rows + other.rows, self.cols, |r, c| {
            if r < self.rows {
                self[(r, c)]
            } else {
                other[(r - self.rows, c)]
            }
        })
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: Fp<P>) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[Fp<P>]) -> Vec<Fp<P>> {
        let mut out = Vec::with_capacity(self.rows);
        self.mul_vec_into(v, &mut out);
        out
    }

    /// [`FieldMatrix::mul_vec`] writing into a caller buffer (cleared
    /// first) — bit-identical results, allocation-free when `out` has
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec_into(&self, v: &[Fp<P>], out: &mut Vec<Fp<P>>) {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        out.clear();
        out.extend((0..self.rows).map(|r| {
            let mut acc: u128 = 0;
            let row = self.row(r);
            for (a, b) in row.iter().zip(v) {
                acc += a.value() as u128 * b.value() as u128;
                // Defensive periodic reduction; with P < 2^61 and
                // realistic row lengths this never triggers, but it
                // keeps the routine correct for any P < 2^64.
                if acc >= u128::MAX / 2 {
                    acc %= P as u128;
                }
            }
            Fp::reduce_u128(acc)
        }));
    }

    /// Gauss–Jordan inverse. Returns `None` if the matrix is singular.
    ///
    /// Pivot normalization is deferred: forward elimination runs
    /// *division-free* (`row_r ← p·row_r − f·row_pivot`), the pivot
    /// values are inverted in one [`Fp::batch_invert`] call, and back
    /// substitution then works against unit pivots. This replaces the
    /// `n` per-pivot Fermat inversions (25+ multiplies each) of the
    /// naive algorithm with a single batched inversion.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Self> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut inv = Self::zeros(n, n);
        let mut scratch = Self::zeros(n, n);
        self.inverse_into(&mut inv, &mut scratch, &mut Vec::new(), &mut Vec::new())
            .then_some(inv)
    }

    /// Allocation-free variant of [`FieldMatrix::inverse`]: writes the
    /// inverse into `inv`, using `scratch` as the working copy of `self`
    /// and `pivots`/`prefix` as batch-inversion scratch. `inv` and
    /// `scratch` must already have the matrix's dimensions. Returns
    /// `false` (leaving `inv` in an unspecified state) if the matrix is
    /// singular; on success `inv` is bit-identical to what
    /// [`FieldMatrix::inverse`] returns.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or the buffer shapes differ.
    pub fn inverse_into(
        &self,
        inv: &mut Self,
        scratch: &mut Self,
        pivots: &mut Vec<Fp<P>>,
        prefix: &mut Vec<Fp<P>>,
    ) -> bool {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        assert_eq!((inv.rows, inv.cols), (self.rows, self.cols), "inverse_into: inv shape");
        assert_eq!((scratch.rows, scratch.cols), (self.rows, self.cols), "inverse_into: scratch");
        let n = self.rows;
        let a = scratch;
        a.data.copy_from_slice(&self.data);
        inv.data.fill(Fp::ZERO);
        for i in 0..n {
            inv[(i, i)] = Fp::ONE;
        }
        // Forward pass: division-free elimination below each pivot.
        for col in 0..n {
            let Some(pivot) = (col..n).find(|&r| !a[(r, col)].is_zero()) else {
                return false;
            };
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = a[(col, col)];
            for r in col + 1..n {
                let f = a[(r, col)];
                if f.is_zero() {
                    continue;
                }
                for c in 0..n {
                    let ac = a[(col, c)];
                    let ic = inv[(col, c)];
                    a[(r, c)] = Fp::mul_add(p, a[(r, c)], -(f * ac));
                    inv[(r, c)] = Fp::mul_add(p, inv[(r, c)], -(f * ic));
                }
            }
        }
        // One batched inversion of all pivots, then normalize each row.
        pivots.clear();
        pivots.extend((0..n).map(|i| a[(i, i)]));
        Fp::batch_invert_with(pivots, prefix);
        for (r, &pinv) in pivots.iter().enumerate() {
            for c in 0..n {
                a[(r, c)] *= pinv;
                inv[(r, c)] *= pinv;
            }
        }
        // Back substitution against unit pivots: no further inversions.
        for col in (1..n).rev() {
            for r in 0..col {
                let f = a[(r, col)];
                if f.is_zero() {
                    continue;
                }
                for c in 0..n {
                    let ic = inv[(col, c)];
                    inv[(r, c)] -= f * ic;
                }
                a[(r, col)] = Fp::ZERO;
            }
        }
        true
    }

    /// Rank via Gaussian elimination.
    ///
    /// Row scaling never changes rank, so elimination runs division-free
    /// (`row_r ← p·row_r − f·row_pivot`): no pivot inversions at all.
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..a.cols {
            if row >= a.rows {
                break;
            }
            let Some(pivot) = (row..a.rows).find(|&r| !a[(r, col)].is_zero()) else {
                continue;
            };
            a.swap_rows(pivot, row);
            let p = a[(row, col)];
            for r in row + 1..a.rows {
                let f = a[(r, col)];
                if f.is_zero() {
                    continue;
                }
                for c in col..a.cols {
                    let v = a[(row, c)];
                    a[(r, c)] = Fp::mul_add(p, a[(r, c)], -(f * v));
                }
            }
            rank += 1;
            row += 1;
        }
        rank
    }

    /// Solves `self · x = b` for square invertible `self`.
    ///
    /// Returns `None` if singular.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent.
    pub fn solve(&self, b: &[Fp<P>]) -> Option<Vec<Fp<P>>> {
        assert_eq!(self.rows, b.len(), "rhs length must match rows");
        let inv = self.inverse()?;
        Some(inv.mul_vec(b))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl<const P: u64> Default for FieldMatrix<P> {
    /// An empty `0 × 0` matrix — a placeholder for scratch slots that
    /// are shaped on first use.
    fn default() -> Self {
        Self { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl<const P: u64> Index<(usize, usize)> for FieldMatrix<P> {
    type Output = Fp<P>;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Fp<P> {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<const P: u64> IndexMut<(usize, usize)> for FieldMatrix<P> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Fp<P> {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<const P: u64> Mul for &FieldMatrix<P> {
    type Output = FieldMatrix<P>;

    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn mul(self, rhs: Self) -> FieldMatrix<P> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = FieldMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] = Fp::mul_add(a, rhs[(k, c)], out[(r, c)]);
                }
            }
        }
        out
    }
}

impl<const P: u64> Add for &FieldMatrix<P> {
    type Output = FieldMatrix<P>;
    fn add(self, rhs: Self) -> FieldMatrix<P> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        FieldMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b).collect(),
        }
    }
}

impl<const P: u64> Sub for &FieldMatrix<P> {
    type Output = FieldMatrix<P>;
    fn sub(self, rhs: Self) -> FieldMatrix<P> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        FieldMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b).collect(),
        }
    }
}

impl<const P: u64> fmt::Debug for FieldMatrix<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FieldMatrix<{P}> {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10} ", self[(r, c)].value())?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{F25, P25};

    fn rng() -> FieldRng {
        FieldRng::seed_from(0xDA2C)
    }

    #[test]
    fn identity_multiplication() {
        let mut r = rng();
        let m = FieldMatrix::<P25>::random(4, 4, &mut r);
        let i = FieldMatrix::<P25>::identity(4);
        assert_eq!(&m * &i, m);
        assert_eq!(&i * &m, m);
    }

    #[test]
    fn inverse_round_trip() {
        let mut r = rng();
        for n in 1..=8 {
            let (m, inv_cached) = FieldMatrix::<P25>::random_invertible(n, &mut r);
            let inv = m.inverse().unwrap();
            assert_eq!(inv, inv_cached, "cached inverse must equal a fresh inversion, n={n}");
            assert_eq!(&m * &inv, FieldMatrix::identity(n), "n={n}");
            assert_eq!(&inv * &m, FieldMatrix::identity(n), "n={n}");
        }
    }

    #[test]
    fn inverse_matches_in_f61() {
        // The Mersenne field exercises the shift-add reduction path.
        let mut r = rng();
        let (m, inv) = FieldMatrix::<{ crate::fp::P61 }>::random_invertible(6, &mut r);
        assert_eq!(&m * &inv, FieldMatrix::identity(6));
    }

    #[test]
    fn inverse_of_permuted_diagonal() {
        // Forces row swaps plus the batched pivot normalization.
        let mut m = FieldMatrix::<P25>::zeros(3, 3);
        m[(0, 2)] = F25::new(2);
        m[(1, 0)] = F25::new(3);
        m[(2, 1)] = F25::new(5);
        let inv = m.inverse().unwrap();
        assert_eq!(&m * &inv, FieldMatrix::identity(3));
        assert_eq!(&inv * &m, FieldMatrix::identity(3));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = FieldMatrix::<P25>::zeros(3, 3);
        m[(0, 0)] = F25::ONE;
        m[(1, 1)] = F25::ONE;
        // third row zero -> singular
        assert!(m.inverse().is_none());
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn duplicate_rows_are_singular() {
        let mut r = rng();
        let mut m = FieldMatrix::<P25>::random(3, 3, &mut r);
        for c in 0..3 {
            let v = m[(0, c)];
            m[(2, c)] = v;
        }
        assert!(m.inverse().is_none());
    }

    #[test]
    fn rank_of_rectangular() {
        let mut r = rng();
        let m = FieldMatrix::<P25>::random(3, 5, &mut r);
        assert_eq!(m.rank(), 3); // random over a huge field: full rank whp
        let t = m.transpose();
        assert_eq!(t.rank(), 3);
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let mut r = rng();
        let m = FieldMatrix::<P25>::random(4, 3, &mut r);
        let v = r.uniform_vec::<P25>(3);
        let as_mat = FieldMatrix::from_vec(3, 1, v.clone());
        let prod = &m * &as_mat;
        let direct = m.mul_vec(&v);
        for i in 0..4 {
            assert_eq!(prod[(i, 0)], direct[i]);
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let mut r = rng();
        let (m, _) = FieldMatrix::<P25>::random_invertible(5, &mut r);
        let x = r.uniform_vec::<P25>(5);
        let b = m.mul_vec(&x);
        assert_eq!(m.solve(&b).unwrap(), x);
    }

    #[test]
    fn transpose_involution() {
        let mut r = rng();
        let m = FieldMatrix::<P25>::random(3, 7, &mut r);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn concat_shapes() {
        let a = FieldMatrix::<P25>::identity(2);
        let b = FieldMatrix::<P25>::zeros(2, 3);
        let h = a.hconcat(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        let v = a.vconcat(&FieldMatrix::zeros(3, 2));
        assert_eq!((v.rows(), v.cols()), (5, 2));
    }

    #[test]
    fn submatrix_extraction() {
        let m = FieldMatrix::<P25>::from_fn(4, 4, |r, c| F25::new((r * 10 + c) as u64));
        let s = m.submatrix(&[1, 3], &[0, 2]);
        assert_eq!(s[(0, 0)], F25::new(10));
        assert_eq!(s[(0, 1)], F25::new(12));
        assert_eq!(s[(1, 0)], F25::new(30));
        assert_eq!(s[(1, 1)], F25::new(32));
    }

    #[test]
    fn diagonal_matrix() {
        let d = FieldMatrix::<P25>::diagonal(&[F25::new(2), F25::new(3)]);
        assert_eq!(d[(0, 0)], F25::new(2));
        assert_eq!(d[(1, 1)], F25::new(3));
        assert_eq!(d[(0, 1)], F25::ZERO);
    }

    #[test]
    fn add_sub_inverse_ops() {
        let mut r = rng();
        let a = FieldMatrix::<P25>::random(3, 3, &mut r);
        let b = FieldMatrix::<P25>::random(3, 3, &mut r);
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
    }

    #[test]
    fn mul_assoc() {
        let mut r = rng();
        let a = FieldMatrix::<P25>::random(2, 3, &mut r);
        let b = FieldMatrix::<P25>::random(3, 4, &mut r);
        let c = FieldMatrix::<P25>::random(4, 2, &mut r);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }
}
