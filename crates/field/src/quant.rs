//! Fixed-point quantization into the field (Algorithm 1 of the paper).
//!
//! DarKnight performs GPU linear algebra in `F_p`, so floating-point
//! tensors are first converted to fixed point and mapped into the field:
//!
//! * inputs and weights are scaled by `2^l` and rounded
//!   (`X_q = Field(Round(X · 2^l))`),
//! * biases are scaled by `2^{2l}` so they align with the product scale,
//! * after the linear operation the TEE applies the *centered lift*
//!   (values above `p/2` become negative) and rescales:
//!   `Y = Round(Y_q · 2^{-l}) · 2^{-l}`.
//!
//! The scheme is exact as long as the true integer result of the bilinear
//! op stays inside `(−p/2, p/2)` — [`QuantConfig::max_dot_terms`] exposes
//! that bound, and [`QuantConfig::normalize`] implements the paper's
//! dynamic max-abs normalization used for VGG-style networks (§5).

use crate::fp::Fp;

/// Errors produced by the quantization pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// A value was too large to represent at the configured scale without
    /// leaving the safe half-field range.
    Overflow {
        /// The offending value after scaling.
        scaled: i128,
        /// The representable bound (`p/2`).
        bound: i128,
    },
    /// Input contained a NaN or infinity.
    NotFinite,
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Overflow { scaled, bound } => {
                write!(f, "quantized value {scaled} exceeds field half-range {bound}")
            }
            QuantError::NotFinite => write!(f, "input value is NaN or infinite"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Fixed-point quantization parameters.
///
/// `frac_bits` is the paper's `l` (8 for their experiments). Smaller
/// values trade precision for headroom against field overflow in layers
/// with large fan-in.
///
/// # Example
///
/// ```
/// use dk_field::{QuantConfig, P25};
///
/// let q = QuantConfig::new(8);
/// let x = q.quantize::<P25>(1.5).unwrap();
/// assert_eq!(q.dequantize_input(x), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantConfig {
    frac_bits: u32,
}

impl Default for QuantConfig {
    /// The paper's setting: `l = 8`.
    fn default() -> Self {
        Self::new(8)
    }
}

impl QuantConfig {
    /// Creates a configuration with `l = frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 20` (no prime we use could hold products).
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits <= 20, "frac_bits {frac_bits} leaves no field headroom");
        Self { frac_bits }
    }

    /// The number of fractional bits `l`.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// The input/weight scale `2^l`.
    pub fn scale(self) -> f64 {
        (1u64 << self.frac_bits) as f64
    }

    /// The paper's `Round`: round-half-up on the scaled value.
    fn round_scaled(self, v: f64, scale: f64) -> Result<i128, QuantError> {
        if !v.is_finite() {
            return Err(QuantError::NotFinite);
        }
        let scaled = v * scale;
        // Round half up, as written in Algorithm 1 (lines 12-17).
        let r = (scaled + 0.5).floor();
        Ok(r as i128)
    }

    /// Quantizes a single input/weight value: `Field(Round(v · 2^l))`.
    ///
    /// # Errors
    ///
    /// [`QuantError::NotFinite`] for NaN/inf; [`QuantError::Overflow`] if
    /// the scaled value exceeds `p/2` in magnitude (it could not be
    /// recovered by the centered lift).
    pub fn quantize<const P: u64>(self, v: f64) -> Result<Fp<P>, QuantError> {
        let scaled = self.round_scaled(v, self.scale())?;
        self.into_field::<P>(scaled)
    }

    /// Quantizes a bias value at product scale: `Field(Round(v · 2^{2l}))`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantConfig::quantize`].
    pub fn quantize_bias<const P: u64>(self, v: f64) -> Result<Fp<P>, QuantError> {
        let scaled = self.round_scaled(v, self.scale() * self.scale())?;
        self.into_field::<P>(scaled)
    }

    fn into_field<const P: u64>(self, scaled: i128) -> Result<Fp<P>, QuantError> {
        let bound = (P / 2) as i128;
        if scaled.abs() > bound {
            return Err(QuantError::Overflow { scaled, bound });
        }
        Ok(Fp::from_i128(scaled))
    }

    /// Quantizes a slice of inputs/weights.
    ///
    /// # Errors
    ///
    /// Returns the first element error encountered.
    pub fn quantize_slice<const P: u64>(self, vs: &[f32]) -> Result<Vec<Fp<P>>, QuantError> {
        vs.iter().map(|&v| self.quantize(v as f64)).collect()
    }

    /// Recovers a float from a quantized *input-scale* value (`2^l`).
    pub fn dequantize_input<const P: u64>(self, x: Fp<P>) -> f64 {
        x.to_centered_i64() as f64 / self.scale()
    }

    /// Recovers the result of a bilinear op on two quantized operands
    /// (product scale `2^{2l}`), applying the paper's two-step rounding
    /// `Round(Y_q · 2^{-l}) · 2^{-l}`.
    pub fn dequantize_product<const P: u64>(self, y: Fp<P>) -> f64 {
        let centered = y.to_centered_i64() as f64;
        let first = (centered / self.scale() + 0.5).floor();
        first / self.scale()
    }

    /// Recovers a slice of bilinear-op results.
    pub fn dequantize_product_slice<const P: u64>(self, ys: &[Fp<P>]) -> Vec<f32> {
        ys.iter().map(|&y| self.dequantize_product(y) as f32).collect()
    }

    /// The worst-case quantization error of a single value: `2^{-l-1}`.
    pub fn unit_error(self) -> f64 {
        0.5 / self.scale()
    }

    /// Overflow analysis: the maximum number of product terms `N` such
    /// that a dot product of `N` terms with |w| ≤ `w_max`, |x| ≤ `x_max`
    /// is guaranteed to stay inside `(−p/2, p/2)` at product scale.
    ///
    /// This is the real fidelity limit of the paper's scheme: with
    /// `l = 8` and unit-magnitude operands in `F_{2^25−39}`, only ~256
    /// terms fit, which is why the paper normalizes VGG activations.
    pub fn max_dot_terms<const P: u64>(self, w_max: f64, x_max: f64) -> usize {
        let per_term = (w_max * self.scale()).ceil() * (x_max * self.scale()).ceil();
        if per_term <= 0.0 {
            return usize::MAX;
        }
        ((P / 2) as f64 / per_term).floor() as usize
    }

    /// Dynamic max-abs normalization (the paper's VGG workaround):
    /// divides the slice by its maximum absolute entry if that entry
    /// exceeds `limit`, returning the divisor used (1.0 if untouched).
    pub fn normalize(self, vs: &mut [f32], limit: f32) -> f32 {
        let max = vs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max > limit && max > 0.0 {
            let inv = limit / max;
            for v in vs.iter_mut() {
                *v *= inv;
            }
            max / limit
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{F25, P25};

    #[test]
    fn round_trip_exact_values() {
        let q = QuantConfig::new(8);
        for v in [-2.0, -0.5, 0.0, 0.25, 1.0, 3.75] {
            let x = q.quantize::<P25>(v).unwrap();
            assert_eq!(q.dequantize_input(x), v, "v={v}");
        }
    }

    #[test]
    fn round_trip_error_bounded() {
        let q = QuantConfig::new(8);
        for i in 0..1000 {
            let v = (i as f64 - 500.0) * 0.00317;
            let x = q.quantize::<P25>(v).unwrap();
            let back = q.dequantize_input(x);
            assert!((back - v).abs() <= q.unit_error() + 1e-12, "v={v} back={back}");
        }
    }

    #[test]
    fn bias_uses_product_scale() {
        let q = QuantConfig::new(8);
        let b = q.quantize_bias::<P25>(0.5).unwrap();
        assert_eq!(b.to_centered_i64(), (0.5 * 65536.0) as i64);
    }

    #[test]
    fn product_dequantization() {
        let q = QuantConfig::new(8);
        // (1.5 * 2.0) at product scale 2^16.
        let w = q.quantize::<P25>(1.5).unwrap();
        let x = q.quantize::<P25>(2.0).unwrap();
        let y = w * x;
        assert!((q.dequantize_product(y) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_product_dequantization() {
        let q = QuantConfig::new(8);
        let w = q.quantize::<P25>(-1.25).unwrap();
        let x = q.quantize::<P25>(2.0).unwrap();
        let y = w * x;
        assert!((q.dequantize_product(y) + 2.5).abs() < 1e-9);
    }

    #[test]
    fn dot_product_in_field_matches_float() {
        let q = QuantConfig::new(8);
        let ws = [0.5f32, -0.25, 1.0, 0.125];
        let xs = [1.0f32, 2.0, -0.5, 4.0];
        let wq = q.quantize_slice::<P25>(&ws).unwrap();
        let xq = q.quantize_slice::<P25>(&xs).unwrap();
        let acc: F25 = wq.iter().zip(&xq).map(|(&a, &b)| a * b).sum();
        let float: f32 = ws.iter().zip(&xs).map(|(a, b)| a * b).sum();
        assert!((q.dequantize_product(acc) as f32 - float).abs() < 1e-4);
    }

    #[test]
    fn overflow_detected() {
        let q = QuantConfig::new(8);
        let err = q.quantize::<P25>(1.0e9).unwrap_err();
        assert!(matches!(err, QuantError::Overflow { .. }));
    }

    #[test]
    fn nan_rejected() {
        let q = QuantConfig::new(8);
        assert_eq!(q.quantize::<P25>(f64::NAN).unwrap_err(), QuantError::NotFinite);
    }

    #[test]
    fn max_dot_terms_matches_paper_headroom() {
        let q = QuantConfig::new(8);
        // |w|,|x| <= 1 at l=8: each product <= 2^16, half-field ~2^24
        // => about 2^8 = 256 terms.
        let n = q.max_dot_terms::<P25>(1.0, 1.0);
        assert!((250..=260).contains(&n), "n={n}");
    }

    #[test]
    fn overflow_bound_is_tight() {
        let q = QuantConfig::new(8);
        let n = q.max_dot_terms::<P25>(1.0, 1.0);
        let one = q.quantize::<P25>(1.0).unwrap();
        // Summing n products of 1.0*1.0 stays recoverable...
        let acc: F25 = (0..n).map(|_| one * one).sum();
        assert_eq!(q.dequantize_product(acc), n as f64);
        // ...but ~2x that wraps around and becomes wrong.
        let acc2: F25 = (0..2 * n + 10).map(|_| one * one).sum();
        assert_ne!(q.dequantize_product(acc2), (2 * n + 10) as f64);
    }

    #[test]
    fn normalize_rescales_when_needed() {
        let q = QuantConfig::new(8);
        let mut vs = vec![2.0f32, -8.0, 1.0];
        let div = q.normalize(&mut vs, 4.0);
        assert!((div - 2.0).abs() < 1e-6);
        assert_eq!(vs, vec![1.0, -4.0, 0.5]);
        // Already in range: untouched.
        let mut vs2 = vec![0.5f32, -1.0];
        assert_eq!(q.normalize(&mut vs2, 4.0), 1.0);
        assert_eq!(vs2, vec![0.5, -1.0]);
    }

    #[test]
    fn smaller_frac_bits_more_headroom() {
        let q5 = QuantConfig::new(5);
        let q8 = QuantConfig::new(8);
        assert!(q5.max_dot_terms::<P25>(1.0, 1.0) > q8.max_dot_terms::<P25>(1.0, 1.0));
    }
}
