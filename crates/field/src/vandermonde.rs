//! Vandermonde / MDS coefficient generators for encoding matrices.
//!
//! DarKnight's collusion tolerance (§4.5 / §5 of the paper) requires the
//! noise block `A2 ∈ F_p^{M×S}` to have the property that *any* subset of
//! at most `M` of its columns is full rank — otherwise a coalition of `M`
//! GPUs could linearly combine their observations to cancel the noise.
//! A rejection-sampled random matrix satisfies this only with high
//! probability per subset; a Vandermonde matrix over distinct nonzero
//! points satisfies it *for every subset, unconditionally*, because every
//! square submatrix of a Vandermonde matrix with distinct points is
//! invertible. We therefore build `A2` (and optionally the whole of `A`)
//! from Vandermonde structure, and expose the generic generator here.

use crate::fp::Fp;
use crate::matrix::FieldMatrix;
use crate::rng::FieldRng;

/// Builds the `rows × cols` Vandermonde matrix `V[r][c] = points[c]^r`.
///
/// Every square submatrix of `V` formed by choosing any `rows` distinct
/// columns is invertible when the points are distinct and nonzero.
///
/// # Panics
///
/// Panics if `points.len() != cols` or the points are not pairwise
/// distinct.
pub fn vandermonde<const P: u64>(rows: usize, points: &[Fp<P>]) -> FieldMatrix<P> {
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            assert_ne!(a, b, "vandermonde points must be distinct");
        }
    }
    FieldMatrix::from_fn(rows, points.len(), |r, c| points[c].pow(r as u64))
}

/// Samples `n` distinct nonzero field points.
///
/// # Panics
///
/// Panics if `n >= P` (cannot pick that many distinct nonzero points).
pub fn distinct_points<const P: u64>(n: usize, rng: &mut FieldRng) -> Vec<Fp<P>> {
    assert!((n as u64) < P, "cannot sample {n} distinct points in F_{P}");
    let mut pts: Vec<Fp<P>> = Vec::with_capacity(n);
    while pts.len() < n {
        let x = rng.uniform_nonzero::<P>();
        if !pts.contains(&x) {
            pts.push(x);
        }
    }
    pts
}

/// Builds an MDS matrix of shape `rows × cols` (`rows <= cols`): every
/// `rows × rows` submatrix is invertible.
///
/// Implemented as a Vandermonde matrix over random distinct nonzero
/// points, with each column scaled by a random nonzero constant (the
/// scaling preserves the MDS property and removes the fixed `1` top row,
/// improving statistical properties of the encoding).
///
/// # Panics
///
/// Panics if `rows > cols`.
pub fn mds_matrix<const P: u64>(rows: usize, cols: usize, rng: &mut FieldRng) -> FieldMatrix<P> {
    assert!(rows <= cols, "MDS requires rows <= cols");
    let pts = distinct_points::<P>(cols, rng);
    let v = vandermonde(rows, &pts);
    let scales: Vec<Fp<P>> = (0..cols).map(|_| rng.uniform_nonzero::<P>()).collect();
    FieldMatrix::from_fn(rows, cols, |r, c| v[(r, c)] * scales[c])
}

/// Verifies the MDS property by brute force over all `rows × rows`
/// column subsets. Exponential in `cols` — intended for tests and small
/// encoding matrices only (DarKnight's are at most ~10 columns).
pub fn is_mds<const P: u64>(m: &FieldMatrix<P>) -> bool {
    let r = m.rows();
    let c = m.cols();
    if r > c {
        return false;
    }
    let rows: Vec<usize> = (0..r).collect();
    let mut subset: Vec<usize> = (0..r).collect();
    loop {
        if m.submatrix(&rows, &subset).inverse().is_none() {
            return false;
        }
        // Next combination.
        let mut i = r;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if subset[i] != i + c - r {
                subset[i] += 1;
                for j in i + 1..r {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{F25, P25};

    #[test]
    fn vandermonde_shape_and_entries() {
        let pts = [F25::new(2), F25::new(3), F25::new(5)];
        let v = vandermonde(3, &pts);
        assert_eq!(v[(0, 0)], F25::ONE);
        assert_eq!(v[(1, 1)], F25::new(3));
        assert_eq!(v[(2, 2)], F25::new(25));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn vandermonde_rejects_duplicates() {
        let pts = [F25::new(2), F25::new(2)];
        let _ = vandermonde(2, &pts);
    }

    #[test]
    fn square_vandermonde_invertible() {
        let mut rng = FieldRng::seed_from(11);
        for n in 1..=7 {
            let pts = distinct_points::<P25>(n, &mut rng);
            let v = vandermonde(n, &pts);
            assert!(v.inverse().is_some(), "n={n}");
        }
    }

    #[test]
    fn distinct_points_are_distinct_and_nonzero() {
        let mut rng = FieldRng::seed_from(12);
        let pts = distinct_points::<P25>(50, &mut rng);
        for (i, a) in pts.iter().enumerate() {
            assert!(!a.is_zero());
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn mds_property_holds() {
        let mut rng = FieldRng::seed_from(13);
        for (r, c) in [(1, 4), (2, 5), (3, 6), (2, 8)] {
            let m = mds_matrix::<P25>(r, c, &mut rng);
            assert!(is_mds(&m), "({r},{c})");
        }
    }

    #[test]
    fn non_mds_detected() {
        // A matrix with a zero column can never be MDS.
        let mut m = FieldMatrix::<P25>::zeros(2, 4);
        m[(0, 0)] = F25::ONE;
        m[(1, 1)] = F25::ONE;
        assert!(!is_mds(&m));
    }

    #[test]
    fn mds_rectangular_rank() {
        let mut rng = FieldRng::seed_from(14);
        let m = mds_matrix::<P25>(3, 7, &mut rng);
        assert_eq!(m.rank(), 3);
    }
}
