//! Edge-case tests for the field scalar and matrix code: the boundary
//! elements `0`, `1`, `p−1` and singular-matrix handling. These pin
//! down behavior the proptest suites only hit probabilistically.

use dk_field::{F25, F61, FieldMatrix, FieldRng, Fp, P25, P61};

// ---------------------------------------------------------------------
// Scalar inverse edges
// ---------------------------------------------------------------------

#[test]
fn zero_has_no_inverse() {
    assert_eq!(F25::ZERO.inv(), None);
    assert_eq!(F61::ZERO.inv(), None);
}

#[test]
fn one_is_self_inverse() {
    assert_eq!(F25::ONE.inv(), Some(F25::ONE));
    assert_eq!(F61::ONE.inv(), Some(F61::ONE));
}

#[test]
fn p_minus_one_is_self_inverse() {
    // p−1 ≡ −1, and (−1)·(−1) = 1, so it must be its own inverse.
    let top = F25::new(P25 - 1);
    assert_eq!(top.inv(), Some(top));
    assert_eq!(top * top, F25::ONE);
    let top61 = F61::new(P61 - 1);
    assert_eq!(top61.inv(), Some(top61));
}

#[test]
fn batch_invert_matches_inv_on_edge_values() {
    let mut xs = vec![F25::ONE, F25::new(P25 - 1), F25::new(2), F25::new(12345)];
    let expect: Vec<F25> = xs.iter().map(|x| x.inv().unwrap()).collect();
    F25::batch_invert(&mut xs);
    assert_eq!(xs, expect);
}

#[test]
#[should_panic(expected = "zero element")]
fn batch_invert_rejects_zero() {
    let mut xs = vec![F25::ONE, F25::ZERO, F25::new(2)];
    F25::batch_invert(&mut xs);
}

// ---------------------------------------------------------------------
// Negation edges
// ---------------------------------------------------------------------

#[test]
fn negation_of_zero_is_zero() {
    assert_eq!(-F25::ZERO, F25::ZERO);
    assert_eq!((-F25::ZERO).value(), 0, "−0 must be canonical 0, not p");
}

#[test]
fn negation_of_one_is_p_minus_one() {
    assert_eq!(-F25::ONE, F25::new(P25 - 1));
    assert_eq!(-F61::ONE, F61::new(P61 - 1));
}

#[test]
fn negation_of_p_minus_one_is_one() {
    assert_eq!(-F25::new(P25 - 1), F25::ONE);
}

#[test]
fn negation_is_involutive_on_edges() {
    for v in [0u64, 1, 2, P25 / 2, P25 - 2, P25 - 1] {
        let x = F25::new(v);
        assert_eq!(-(-x), x, "v={v}");
        assert_eq!(x + (-x), F25::ZERO, "v={v}");
    }
}

#[test]
fn centered_lift_edges() {
    assert_eq!(F25::ZERO.to_centered_i64(), 0);
    assert_eq!(F25::new(P25 - 1).to_centered_i64(), -1);
    assert_eq!(F25::from_i64(-1).value(), P25 - 1);
    let half = (P25 / 2) as i64;
    assert_eq!(F25::from_i64(half).to_centered_i64(), half);
    assert_eq!(F25::from_i64(-half).to_centered_i64(), -half);
}

// ---------------------------------------------------------------------
// Gauss–Jordan inversion on singular inputs: must report failure via
// `None`, never panic or return garbage.
// ---------------------------------------------------------------------

#[test]
fn zero_matrix_is_singular() {
    for n in 1..=5 {
        let z = FieldMatrix::<P25>::zeros(n, n);
        assert_eq!(z.inverse(), None, "n={n}");
        assert_eq!(z.rank(), 0, "n={n}");
    }
}

#[test]
fn duplicate_row_matrix_is_singular() {
    let mut rng = FieldRng::seed_from(11);
    for n in 2..=6 {
        let mut m = FieldMatrix::<P25>::random(n, n, &mut rng);
        // Overwrite the last row with a copy of the first.
        for c in 0..n {
            m[(n - 1, c)] = m[(0, c)];
        }
        assert_eq!(m.inverse(), None, "n={n}");
        assert!(m.rank() < n, "n={n}");
    }
}

#[test]
fn scaled_row_matrix_is_singular() {
    // A row that is a nonzero scalar multiple of another (not merely
    // equal) must also be caught.
    let mut rng = FieldRng::seed_from(12);
    let n = 4;
    let mut m = FieldMatrix::<P25>::random(n, n, &mut rng);
    let s = rng.uniform_nonzero::<P25>();
    for c in 0..n {
        m[(2, c)] = m[(0, c)] * s;
    }
    assert_eq!(m.inverse(), None);
}

#[test]
fn rank_one_outer_product_is_singular() {
    let mut rng = FieldRng::seed_from(13);
    let n = 5;
    let u: Vec<Fp<P25>> = (0..n).map(|_| rng.uniform_nonzero()).collect();
    let v: Vec<Fp<P25>> = (0..n).map(|_| rng.uniform_nonzero()).collect();
    let m = FieldMatrix::<P25>::from_fn(n, n, |r, c| u[r] * v[c]);
    assert_eq!(m.rank(), 1);
    assert_eq!(m.inverse(), None);
}

#[test]
fn singular_detection_does_not_corrupt_nearby_invertible_path() {
    // Regression guard: after a failed inversion, the same code path
    // must still invert a perturbed (invertible) matrix correctly.
    let mut rng = FieldRng::seed_from(14);
    let n = 4;
    let mut m = FieldMatrix::<P25>::random(n, n, &mut rng);
    for c in 0..n {
        m[(1, c)] = m[(0, c)];
    }
    assert_eq!(m.inverse(), None);
    // Perturb the duplicated row with fresh randomness until invertible.
    loop {
        for c in 0..n {
            m[(1, c)] = rng.uniform();
        }
        if let Some(inv) = m.inverse() {
            assert_eq!(&m * &inv, FieldMatrix::identity(n));
            break;
        }
    }
}

#[test]
fn one_by_one_zero_is_singular_and_one_by_one_unit_inverts() {
    let z = FieldMatrix::<P25>::zeros(1, 1);
    assert_eq!(z.inverse(), None);
    let mut u = FieldMatrix::<P25>::zeros(1, 1);
    u[(0, 0)] = F25::new(7);
    let inv = u.inverse().expect("nonzero 1x1 is invertible");
    assert_eq!(inv[(0, 0)], F25::new(7).inv().unwrap());
}
