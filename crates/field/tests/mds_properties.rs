//! Property tests for the §5 collusion-tolerance invariant: every
//! square submatrix of a generated Vandermonde/MDS encoding matrix must
//! be invertible. This is exactly the property that makes any coalition
//! of ≤ M workers information-theoretically blind — a single singular
//! square submatrix would be a privacy hole.

use dk_field::vandermonde::{distinct_points, is_mds, mds_matrix, vandermonde};
use dk_field::{FieldMatrix, FieldRng, P25};
use proptest::prelude::*;

/// Enumerates index subsets of size `k` from `0..n` (n and k are tiny).
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    if k == 0 || k > n {
        return out;
    }
    loop {
        out.push(idx.clone());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Exhaustively checks the MDS property by direct submatrix inversion
/// (independent of `is_mds`, so the two implementations cross-check).
fn every_square_submatrix_invertible(m: &FieldMatrix<P25>) -> bool {
    for size in 1..=m.rows().min(m.cols()) {
        for rows in subsets(m.rows(), size) {
            for cols in subsets(m.cols(), size) {
                if m.submatrix(&rows, &cols).inverse().is_none() {
                    return false;
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator's output is MDS for every sampled geometry: all
    /// square submatrices (every size, every row/column choice) invert.
    #[test]
    fn mds_matrix_every_square_submatrix_invertible(
        seed in any::<u64>(),
        rows in 1usize..4,
        extra in 0usize..4,
    ) {
        let mut rng = FieldRng::seed_from(seed);
        let cols = rows + extra;
        let m = mds_matrix::<P25>(rows, cols, &mut rng);
        prop_assert!(every_square_submatrix_invertible(&m));
        // And the library's own checker agrees.
        prop_assert!(is_mds(&m));
    }

    /// Raw Vandermonde matrices over distinct points have the same
    /// property (they are what `mds_matrix` builds from).
    #[test]
    fn vandermonde_on_distinct_points_is_mds(
        seed in any::<u64>(),
        rows in 1usize..4,
        extra in 0usize..3,
    ) {
        let mut rng = FieldRng::seed_from(seed);
        let cols = rows + extra;
        let points = distinct_points::<P25>(cols, &mut rng);
        let m = vandermonde(rows, &points);
        prop_assert!(every_square_submatrix_invertible(&m));
    }

    /// Sanity for the checker itself: planting a duplicated column in
    /// an otherwise-MDS matrix must break the property (guards against
    /// a vacuously-true `every_square_submatrix_invertible`).
    #[test]
    fn duplicated_column_breaks_mds(seed in any::<u64>(), rows in 2usize..4) {
        let mut rng = FieldRng::seed_from(seed);
        let cols = rows + 2;
        let m = mds_matrix::<P25>(rows, cols, &mut rng);
        let mut broken = m.clone();
        for r in 0..rows {
            broken[(r, cols - 1)] = broken[(r, 0)];
        }
        prop_assert!(!every_square_submatrix_invertible(&broken));
        prop_assert!(!is_mds(&broken));
    }
}
