//! Static `Send`/`Sync` assertions for every type the serving runtime
//! shares across threads.
//!
//! The server moves sessions, models and clusters into worker threads
//! (`Send`), and shares handles, configs and the metrics recorder
//! between caller threads (`Send + Sync`). These bounds are API
//! contracts: losing one (say, by slipping an `Rc` into a config) would
//! break every downstream embedder, so they are pinned here at compile
//! time — the assertions fail to *build*, not to run, if a bound
//! regresses.

use dk_core::{DarknightConfig, DarknightError, DarknightSession, EncodingScheme};
use dk_field::QuantConfig;
use dk_gpu::GpuCluster;
use dk_nn::Sequential;
use dk_serve::{
    InferenceRequest, IntegrityVerdict, Priority, RequestId, Response, Server, ServerConfig,
    ServerHandle, ServerMetrics, Shed, Ticket,
};

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_configuration_types_are_send_and_sync() {
    // Cloned into every worker thread and readable from any of them.
    assert_send_sync::<DarknightConfig>();
    assert_send_sync::<QuantConfig>();
    assert_send_sync::<EncodingScheme>();
    assert_send_sync::<ServerConfig>();
}

#[test]
fn request_and_response_types_are_send() {
    // Cross the caller → aggregator → worker → caller channel chain.
    assert_send_sync::<InferenceRequest>();
    assert_send_sync::<RequestId>();
    assert_send_sync::<Priority>();
    assert_send_sync::<IntegrityVerdict>();
    assert_send::<Response>();
    assert_send::<Shed>();
    // A ticket wraps an mpsc receiver: movable to a waiter thread, but
    // deliberately not shareable between two.
    assert_send::<Ticket>();
}

#[test]
fn runtime_types_are_send() {
    // Moved into worker threads at pool construction.
    assert_send::<DarknightSession>();
    assert_send::<GpuCluster>();
    assert_send::<Sequential>();
    assert_send::<DarknightError>();
    // Shared by arbitrarily many caller threads.
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<Server>();
    assert_send_sync::<ServerMetrics>();
}
