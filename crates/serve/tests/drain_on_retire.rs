//! Property test: retiring workers never changes an answer.
//!
//! The drain-on-retire guarantee (ISSUE tentpole 1): scaling the pool
//! down *retires* a worker — stops feeding it and lets it drain — so
//! every in-flight batch completes, and per-sample quantization makes
//! every completed response bit-for-bit the answer that request gets
//! in a fixed-size deployment (or run alone through
//! `dk_core::QuantizedReference`). Here the pool is resized at **every
//! batch boundary** — down to a single worker and back up — while a
//! fixed-size server and the solo reference answer the same stream;
//! outputs and integrity verdicts must match all three ways, bitwise.

use dk_core::{DarknightConfig, QuantizedReference};
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;
use dk_serve::{InferenceRequest, Server, ServerConfig};
use proptest::prelude::*;
use std::time::Duration;

const HW: usize = 8;
const CLASSES: usize = 4;

fn sample(case_seed: u64, i: u64) -> Tensor<f32> {
    let magnitude = 0.02 * (1 + (case_seed ^ i) % 40) as f32;
    Tensor::from_fn(&[3, HW, HW], |j| {
        let h = (j as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case_seed.wrapping_mul(31).wrapping_add(i));
        ((h % 29) as f32 - 14.0) * magnitude
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn retiring_at_every_batch_boundary_changes_nothing(
        k in 2usize..4,
        case_seed in 0u64..1_000_000,
    ) {
        let model = mini_vgg(HW, CLASSES, case_seed ^ 0xAB);
        let cfg = DarknightConfig::new(k, 1).with_integrity(true).with_seed(case_seed);
        let cluster = GpuCluster::honest(cfg.workers_required(), case_seed ^ 0xCD);
        let server_cfg = || ServerConfig::new(cfg, &[3, HW, HW])
            .with_max_batch_wait(Duration::from_millis(2));
        // The elastic server gets resized at every batch boundary; the
        // fixed server never changes shape. Identical answers required.
        let elastic = Server::start(server_cfg().with_workers(3), &model, &cluster).unwrap();
        let fixed = Server::start(server_cfg().with_workers(2), &model, &cluster).unwrap();
        let eh = elastic.handle();
        let fh = fixed.handle();

        // One full virtual batch per wave; pool resize (= retire or
        // spawn) between waves, i.e. at every batch boundary.
        let resize_cycle = [2usize, 1, 3, 1, 2, 3];
        let mut served = 0u64;
        for (wave, &target) in resize_cycle.iter().enumerate() {
            let tickets: Vec<_> = (0..k as u64)
                .map(|i| {
                    let x = sample(case_seed, wave as u64 * 100 + i);
                    let te = eh.submit(InferenceRequest::new(x.clone())).unwrap();
                    let tf = fh.submit(InferenceRequest::new(x.clone())).unwrap();
                    (x, te, tf)
                })
                .collect();
            for (x, te, tf) in tickets {
                let re = te.wait().expect("elastic server alive");
                let rf = tf.wait().expect("fixed server alive");
                let ye = re.output.expect("honest cluster must serve");
                let yf = rf.output.expect("honest cluster must serve");
                let solo =
                    QuantizedReference::forward_solo(&model, &x, cfg.quant()).unwrap().into_vec();
                prop_assert_eq!(ye.as_slice(), &solo[..]);
                prop_assert_eq!(ye.as_slice(), yf.as_slice());
                prop_assert!(re.verdict == rf.verdict, "verdicts must agree");
                served += 1;
            }
            // Batch boundary: retire (or grow) before the next wave.
            let now = elastic.resize_pool(target).unwrap();
            prop_assert_eq!(now, target);
        }

        let me = elastic.shutdown();
        let mf = fixed.shutdown();
        prop_assert_eq!(me.served, served);
        prop_assert_eq!(mf.served, served);
        prop_assert!(me.failed == 0, "honest fleet: no integrity failures");
        prop_assert!(me.pool_workers == 0, "shutdown joins retired and active workers");
        prop_assert!(me.scale_downs >= 2, "the cycle retired workers: {}", me.scale_downs);
        prop_assert!(me.scale_ups >= 2, "the cycle grew the pool: {}", me.scale_ups);
    }
}
