//! Property test: serving never changes an answer.
//!
//! Every response routed through `dk_serve` — whatever virtual batch
//! the request rode in, however full that batch was, whatever priority
//! or deadline it carried — must be **bit-for-bit** equal to running
//! `dk_core::QuantizedReference` on that request alone. This is the
//! per-sample-quantization guarantee of
//! `DarknightSession::private_inference_per_sample`, exercised here
//! end-to-end across random request counts, virtual batch sizes, pool
//! sizes, priorities, deadlines and input magnitudes (so batches mix
//! rows of very different scales, the case a shared quantization scale
//! would get wrong).

use dk_core::{DarknightConfig, QuantizedReference};
use dk_field::QuantConfig;
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;
use dk_nn::Sequential;
use dk_serve::{InferenceRequest, Priority, Server, ServerConfig, Ticket};
use proptest::prelude::*;
use std::time::Duration;

const HW: usize = 8;
const CLASSES: usize = 4;

/// Deterministic pseudo-random sample; `magnitude` decouples row scales.
fn sample(case_seed: u64, i: u64) -> Tensor<f32> {
    let magnitude = 0.02 * (1 + (case_seed ^ i) % 40) as f32;
    Tensor::from_fn(&[3, HW, HW], |j| {
        let h = (j as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case_seed.wrapping_mul(31).wrapping_add(i));
        ((h % 29) as f32 - 14.0) * magnitude
    })
}

fn priority_for(i: u64) -> Priority {
    match i % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    }
}

fn solo_reference(model: &Sequential, x: &Tensor<f32>, quant: QuantConfig) -> Vec<f32> {
    QuantizedReference::forward_solo(model, x, quant).unwrap().into_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn served_responses_match_solo_reference(
        k in 2usize..5,
        workers in 1usize..4,
        n_requests in 1usize..20,
        wait_ms in 1u64..4,
        case_seed in 0u64..1_000_000,
    ) {
        let model = mini_vgg(HW, CLASSES, case_seed ^ 0xAB);
        let cfg = DarknightConfig::new(k, 1).with_integrity(true).with_seed(case_seed);
        let cluster = GpuCluster::honest(cfg.workers_required(), case_seed ^ 0xCD);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(workers)
                .with_max_batch_wait(Duration::from_millis(wait_ms)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let tickets: Vec<(Tensor<f32>, Ticket)> = (0..n_requests as u64)
            .map(|i| {
                let x = sample(case_seed, i);
                let req = InferenceRequest::new(x.clone()).with_priority(priority_for(i));
                (x, handle.submit(req).unwrap())
            })
            .collect();
        for (x, ticket) in tickets {
            let resp = ticket.wait().expect("server alive");
            prop_assert!(
                resp.batch_fill > 0.0 && resp.batch_fill <= 1.0,
                "fill out of range: {}",
                resp.batch_fill
            );
            let y = resp.output.expect("honest cluster must serve");
            prop_assert_eq!(y.as_slice(), &solo_reference(&model, &x, cfg.quant())[..]);
        }
        let metrics = server.shutdown();
        prop_assert_eq!(metrics.served, n_requests as u64);
        // Honest cluster: zero integrity false positives.
        prop_assert_eq!(metrics.failed, 0);
        prop_assert_eq!(metrics.real_rows, n_requests as u64);
        // Row conservation: every dispatched row is a real request or
        // accounted padding.
        prop_assert_eq!(
            metrics.real_rows + metrics.padded_rows,
            metrics.batches * k as u64
        );
    }
}
