//! Serving metrics: recorded live by the server threads, snapshotted
//! into [`ServerMetrics`], and rendered through
//! `dk_perf::report::serving_table` or scraped as Prometheus text.
//!
//! The counters live in a private, always-enabled [`dk_obs::Registry`]
//! (one per server — exact-count tests must not cross-contaminate
//! through the process-global registry), so every recording is a
//! relaxed `fetch_add` and the whole set renders through the standard
//! `render_prometheus`/`render_json` expositions. Queue-wait latency is
//! double-booked: a `dk_serve_queue_wait_us` histogram for scrapes, and
//! a bounded sliding window of raw samples for the *exact* nearest-rank
//! percentiles the serving report prints.

use dk_core::DarknightError;
use dk_gpu::GpuError;
use dk_obs::{Counter, Gauge, Histogram, Registry};
use dk_perf::ServingRow;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Queue-latency percentiles are computed over a sliding window of the
/// most recent responses, so a long-running server neither grows
/// without bound nor pays an ever-larger sort per snapshot.
const QUEUE_WAIT_WINDOW: usize = 4096;

/// Thread-shared recorder. Counters are lock-free; only the exact
/// queue-wait window takes a lock, and those events are tiny compared
/// to an encode/decode round.
pub(crate) struct MetricsRecorder {
    started: Instant,
    registry: Registry,
    submitted: Counter,
    served: Counter,
    shed: Counter,
    failed: Counter,
    batches: Counter,
    real_rows: Counter,
    padded_rows: Counter,
    repaired: Counter,
    worker_lost: Counter,
    timeouts: Counter,
    quarantined: Counter,
    repaired_rows: Counter,
    scale_ups: Counter,
    scale_downs: Counter,
    queue_depth: Gauge,
    dispatch_depth: Gauge,
    pool_workers: Gauge,
    queue_wait_us: Histogram,
    window: Mutex<WaitWindow>,
}

#[derive(Debug, Default)]
struct WaitWindow {
    /// Ring buffer of the last [`QUEUE_WAIT_WINDOW`] queue waits.
    waits_us: Vec<u64>,
    /// Next overwrite position once the ring is full.
    cursor: usize,
    last_response_at: Option<Instant>,
}

impl std::fmt::Debug for MetricsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRecorder")
            .field("submitted", &self.submitted.value())
            .field("served", &self.served.value())
            .field("shed", &self.shed.value())
            .field("failed", &self.failed.value())
            .finish_non_exhaustive()
    }
}

impl MetricsRecorder {
    pub fn new() -> Self {
        let registry = Registry::new();
        registry.enable();
        let c = |name: &str| registry.counter(name);
        Self {
            started: Instant::now(),
            submitted: c("dk_serve_submitted_total"),
            served: c("dk_serve_served_total"),
            shed: c("dk_serve_shed_total"),
            failed: c("dk_serve_failed_total"),
            batches: c("dk_serve_batches_total"),
            real_rows: c("dk_serve_real_rows_total"),
            padded_rows: c("dk_serve_padded_rows_total"),
            repaired: c("dk_serve_repaired_total"),
            worker_lost: c("dk_serve_worker_lost_total"),
            timeouts: c("dk_serve_timeouts_total"),
            quarantined: c("dk_serve_quarantined_total"),
            repaired_rows: c("dk_serve_repaired_rows_total"),
            scale_ups: c("dk_serve_scale_ups_total"),
            scale_downs: c("dk_serve_scale_downs_total"),
            queue_depth: registry.gauge("dk_serve_queue_depth"),
            dispatch_depth: registry.gauge("dk_serve_dispatch_depth"),
            pool_workers: registry.gauge("dk_serve_pool_workers"),
            queue_wait_us: registry.histogram("dk_serve_queue_wait_us"),
            window: Mutex::new(WaitWindow::default()),
            registry,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WaitWindow> {
        self.window.lock().expect("metrics lock poisoned")
    }

    pub fn record_submitted(&self) {
        self.submitted.inc();
    }

    pub fn record_shed(&self) {
        self.shed.inc();
    }

    pub fn record_batch(&self, real_rows: usize, padded_rows: usize) {
        self.batches.inc();
        self.real_rows.add(real_rows as u64);
        self.padded_rows.add(padded_rows as u64);
    }

    /// Classifies a batch-aborting error into the fault-path counters
    /// (one event per failed batch, not per batched request).
    pub fn record_fault(&self, e: &DarknightError) {
        if let DarknightError::GpuFault { fault, .. } = e {
            match fault {
                GpuError::WorkerLost { .. } => self.worker_lost.inc(),
                GpuError::Timeout { .. } => self.timeouts.inc(),
                _ => {}
            }
        }
    }

    /// A request entered the ingress queue (gauge pairs with
    /// [`MetricsRecorder::record_dequeued`]).
    pub fn record_enqueued(&self) {
        self.queue_depth.inc();
    }

    /// The aggregator absorbed a request off the ingress queue.
    pub fn record_dequeued(&self) {
        self.queue_depth.dec();
    }

    /// A batch entered (or left) the dispatch queue. The enter side is
    /// recorded *before* the (blocking) send so a batch stuck behind a
    /// full queue still shows up as dispatch pressure.
    pub fn record_dispatch_enqueued(&self) {
        self.dispatch_depth.inc();
    }

    /// A worker feeder pulled a batch off the dispatch queue.
    pub fn record_dispatch_dequeued(&self) {
        self.dispatch_depth.dec();
    }

    /// Publishes the current pool size (workers still being fed).
    pub fn set_pool_workers(&self, n: usize) {
        self.pool_workers.set(n as i64);
    }

    /// One autoscale step in the given direction.
    pub fn record_scale(&self, up: bool) {
        if up {
            self.scale_ups.inc();
        } else {
            self.scale_downs.inc();
        }
    }

    /// Current ingress-queue occupancy (controller signal).
    pub fn queue_depth_now(&self) -> u64 {
        self.queue_depth.value().max(0) as u64
    }

    /// Current dispatch-queue occupancy (controller signal).
    pub fn dispatch_depth_now(&self) -> u64 {
        self.dispatch_depth.value().max(0) as u64
    }

    /// Total requests shed so far (controller computes deltas).
    pub fn shed_total(&self) -> u64 {
        self.shed.value()
    }

    /// Workers newly quarantined while serving one batch.
    pub fn record_quarantined(&self, workers: usize) {
        self.quarantined.add(workers as u64);
    }

    /// Real request rows served out of a TEE-repaired batch.
    pub fn record_repaired_rows(&self, rows: usize) {
        self.repaired_rows.add(rows as u64);
    }

    pub fn record_response(&self, queue_wait: Duration, ok: bool, repaired: bool) {
        if ok {
            self.served.inc();
        } else {
            self.failed.inc();
        }
        if repaired {
            self.repaired.inc();
        }
        let wait_us = queue_wait.as_micros() as u64;
        self.queue_wait_us.record(wait_us);
        let mut g = self.lock();
        if g.waits_us.len() < QUEUE_WAIT_WINDOW {
            g.waits_us.push(wait_us);
        } else {
            let cursor = g.cursor;
            g.waits_us[cursor] = wait_us;
            g.cursor = (cursor + 1) % QUEUE_WAIT_WINDOW;
        }
        g.last_response_at = Some(Instant::now());
    }

    /// Prometheus text exposition of every serving metric.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The same metrics as a flat JSON document.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }

    pub fn snapshot(&self) -> ServerMetrics {
        let g = self.lock();
        let mut waits = g.waits_us.clone();
        waits.sort_unstable();
        let wall = match g.last_response_at {
            Some(t) => t.duration_since(self.started),
            None => self.started.elapsed(),
        };
        drop(g);
        let (real_rows, padded_rows) = (self.real_rows.value(), self.padded_rows.value());
        let total_rows = real_rows + padded_rows;
        let served = self.served.value();
        ServerMetrics {
            submitted: self.submitted.value(),
            served,
            shed: self.shed.value(),
            failed: self.failed.value(),
            repaired: self.repaired.value(),
            batches: self.batches.value(),
            real_rows,
            padded_rows,
            worker_lost: self.worker_lost.value(),
            timeouts: self.timeouts.value(),
            quarantined: self.quarantined.value(),
            repaired_rows: self.repaired_rows.value(),
            pool_workers: self.pool_workers.value().max(0) as u64,
            scale_ups: self.scale_ups.value(),
            scale_downs: self.scale_downs.value(),
            batch_fill_ratio: if total_rows == 0 {
                1.0
            } else {
                real_rows as f64 / total_rows as f64
            },
            p50_queue: percentile(&waits, 0.50),
            p95_queue: percentile(&waits, 0.95),
            wall,
            throughput_rps: if wall.is_zero() { 0.0 } else { served as f64 / wall.as_secs_f64() },
        }
    }
}

/// Nearest-rank percentile over pre-sorted microsecond samples.
fn percentile(sorted_us: &[u64], q: f64) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    Duration::from_micros(sorted_us[idx])
}

/// A point-in-time summary of one server's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMetrics {
    /// Requests accepted by admission control.
    pub submitted: u64,
    /// Requests answered with an output.
    pub served: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests whose batch failed (integrity violation or other
    /// session error); they received an error response, not an output.
    pub failed: u64,
    /// Requests served out of a batch that tripped the redundant
    /// equation and was repaired by the recovery extension — correct
    /// outputs, but evidence of active tampering in the fleet.
    pub repaired: u64,
    /// Virtual batches dispatched.
    pub batches: u64,
    /// Real request rows across all dispatched batches.
    pub real_rows: u64,
    /// All-zero padding rows across all dispatched batches.
    pub padded_rows: u64,
    /// Batches aborted by a lost GPU worker (fail-closed mode only —
    /// with recovery on, a lost worker is repaired, not failed).
    pub worker_lost: u64,
    /// Batches aborted by a worker deadline expiry.
    pub timeouts: u64,
    /// Workers quarantined by the recovery extension across all batches.
    pub quarantined: u64,
    /// Real request rows served out of TEE-repaired batches.
    pub repaired_rows: u64,
    /// Workers currently being fed (a retired worker leaves this gauge
    /// immediately but still drains its in-flight batches).
    pub pool_workers: u64,
    /// Workers spawned over the server's lifetime (initial spawns,
    /// autoscale growth and manual resizes alike).
    pub scale_ups: u64,
    /// Workers retired over the server's lifetime (autoscale shrink or
    /// manual resize; a retired worker drains, it is never killed).
    pub scale_downs: u64,
    /// `real_rows / (real_rows + padded_rows)`; `1.0` when no batch
    /// was dispatched (or none needed padding).
    pub batch_fill_ratio: f64,
    /// Median submission → dispatch wait over the most recent 4096
    /// responses.
    pub p50_queue: Duration,
    /// 95th-percentile submission → dispatch wait over the most recent
    /// 4096 responses.
    pub p95_queue: Duration,
    /// Server start → last routed response.
    pub wall: Duration,
    /// `served / wall`.
    pub throughput_rps: f64,
}

impl ServerMetrics {
    /// Converts to the renderer-facing row consumed by
    /// `dk_perf::report::serving_table`.
    pub fn row(&self, label: impl Into<String>) -> ServingRow {
        ServingRow {
            label: label.into(),
            throughput_rps: self.throughput_rps,
            p50_queue_ms: self.p50_queue.as_secs_f64() * 1e3,
            p95_queue_ms: self.p95_queue.as_secs_f64() * 1e3,
            batch_fill: self.batch_fill_ratio,
            served: self.served,
            shed: self.shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_and_snapshots() {
        let rec = MetricsRecorder::new();
        rec.record_submitted();
        rec.record_submitted();
        rec.record_shed();
        rec.record_batch(2, 2);
        rec.record_response(Duration::from_millis(2), true, false);
        rec.record_response(Duration::from_millis(4), false, false);
        let m = rec.snapshot();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.served, 1);
        assert_eq!(m.shed, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.batches, 1);
        assert_eq!((m.real_rows, m.padded_rows), (2, 2));
        assert!((m.batch_fill_ratio - 0.5).abs() < 1e-12);
        assert!(m.p50_queue >= Duration::from_millis(2));
        assert!(m.p95_queue >= m.p50_queue);
        assert!(m.wall > Duration::ZERO);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let m = MetricsRecorder::new().snapshot();
        assert_eq!(m.served, 0);
        assert_eq!(m.batch_fill_ratio, 1.0);
        assert_eq!(m.p50_queue, Duration::ZERO);
        assert_eq!(m.throughput_rps, 0.0);
        assert_eq!((m.worker_lost, m.timeouts, m.quarantined, m.repaired_rows), (0, 0, 0, 0));
    }

    /// Regression: the wait buffer is a bounded ring — old samples are
    /// overwritten, memory does not grow with uptime, and percentiles
    /// reflect the recent window.
    #[test]
    fn queue_waits_are_a_bounded_sliding_window() {
        let rec = MetricsRecorder::new();
        for _ in 0..QUEUE_WAIT_WINDOW {
            rec.record_response(Duration::ZERO, true, false);
        }
        for _ in 0..QUEUE_WAIT_WINDOW {
            rec.record_response(Duration::from_millis(7), true, true);
        }
        let m = rec.snapshot();
        assert_eq!(m.served, 2 * QUEUE_WAIT_WINDOW as u64, "counters still see everything");
        assert_eq!(m.repaired, QUEUE_WAIT_WINDOW as u64);
        assert_eq!(
            m.p50_queue,
            Duration::from_millis(7),
            "window holds only the recent samples"
        );
        assert_eq!(rec.lock().waits_us.len(), QUEUE_WAIT_WINDOW);
        // The histogram, by contrast, keeps counting everything.
        assert_eq!(rec.queue_wait_us.count(), 2 * QUEUE_WAIT_WINDOW as u64);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 0.50), Duration::from_micros(51));
        assert_eq!(percentile(&us, 0.95), Duration::from_micros(95));
        assert_eq!(percentile(&us, 1.0), Duration::from_micros(100));
    }

    #[test]
    fn row_conversion_carries_fields() {
        let rec = MetricsRecorder::new();
        rec.record_batch(3, 1);
        rec.record_response(Duration::from_millis(1), true, false);
        let row = rec.snapshot().row("pool=1");
        assert_eq!(row.label, "pool=1");
        assert_eq!(row.served, 1);
        assert!((row.batch_fill - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_classify_gpu_faults() {
        let rec = MetricsRecorder::new();
        rec.record_fault(&DarknightError::GpuFault {
            layer_id: 1,
            phase: "forward",
            fault: GpuError::lost(dk_gpu::WorkerId(2), "conn reset"),
        });
        rec.record_fault(&DarknightError::GpuFault {
            layer_id: 1,
            phase: "forward",
            fault: GpuError::Timeout { worker: dk_gpu::WorkerId(0), waited_ms: 50 },
        });
        // Non-GPU errors classify as neither.
        rec.record_fault(&DarknightError::BatchShape { expected: 4, actual: 2 });
        rec.record_quarantined(2);
        rec.record_repaired_rows(3);
        let m = rec.snapshot();
        assert_eq!(m.worker_lost, 1);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.quarantined, 2);
        assert_eq!(m.repaired_rows, 3);
    }

    #[test]
    fn elastic_gauges_and_scale_counters() {
        let rec = MetricsRecorder::new();
        rec.record_enqueued();
        rec.record_enqueued();
        rec.record_dequeued();
        rec.record_dispatch_enqueued();
        rec.set_pool_workers(3);
        rec.record_scale(true);
        rec.record_scale(true);
        rec.record_scale(false);
        assert_eq!(rec.queue_depth_now(), 1);
        assert_eq!(rec.dispatch_depth_now(), 1);
        let m = rec.snapshot();
        assert_eq!(m.pool_workers, 3);
        assert_eq!((m.scale_ups, m.scale_downs), (2, 1));
        let text = rec.render_prometheus();
        assert!(text.contains("dk_serve_pool_workers 3"));
        assert!(text.contains("dk_serve_scale_ups_total 2"));
    }

    #[test]
    fn prometheus_exposition_carries_serving_counters() {
        let rec = MetricsRecorder::new();
        rec.record_submitted();
        rec.record_batch(4, 0);
        rec.record_response(Duration::from_micros(250), true, false);
        let text = rec.render_prometheus();
        assert!(text.contains("# TYPE dk_serve_submitted_total counter"));
        assert!(text.contains("dk_serve_submitted_total 1"));
        assert!(text.contains("dk_serve_real_rows_total 4"));
        assert!(text.contains("dk_serve_queue_wait_us_count 1"));
        let json = rec.render_json();
        assert!(json.contains("\"dk_serve_queue_wait_us\""));
    }
}
