//! Serving metrics: recorded live by the server threads, snapshotted
//! into [`ServerMetrics`], and rendered through
//! `dk_perf::report::serving_table`.

use dk_perf::ServingRow;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Queue-latency percentiles are computed over a sliding window of the
/// most recent responses, so a long-running server neither grows
/// without bound nor pays an ever-larger sort per snapshot.
const QUEUE_WAIT_WINDOW: usize = 4096;

/// Thread-shared recorder. One lock per event keeps this simple; the
/// events are tiny compared to an encode/decode round, so contention is
/// negligible at pool scale.
#[derive(Debug)]
pub(crate) struct MetricsRecorder {
    started: Instant,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    submitted: u64,
    served: u64,
    shed: u64,
    failed: u64,
    batches: u64,
    real_rows: u64,
    padded_rows: u64,
    repaired: u64,
    /// Ring buffer of the last [`QUEUE_WAIT_WINDOW`] queue waits.
    queue_waits_us: Vec<u64>,
    /// Next overwrite position once the ring is full.
    wait_cursor: usize,
    last_response_at: Option<Instant>,
}

impl MetricsRecorder {
    pub fn new() -> Self {
        Self { started: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics lock poisoned")
    }

    pub fn record_submitted(&self) {
        self.lock().submitted += 1;
    }

    pub fn record_shed(&self) {
        self.lock().shed += 1;
    }

    pub fn record_batch(&self, real_rows: usize, padded_rows: usize) {
        let mut g = self.lock();
        g.batches += 1;
        g.real_rows += real_rows as u64;
        g.padded_rows += padded_rows as u64;
    }

    pub fn record_response(&self, queue_wait: Duration, ok: bool, repaired: bool) {
        let mut g = self.lock();
        if ok {
            g.served += 1;
        } else {
            g.failed += 1;
        }
        if repaired {
            g.repaired += 1;
        }
        let wait_us = queue_wait.as_micros() as u64;
        if g.queue_waits_us.len() < QUEUE_WAIT_WINDOW {
            g.queue_waits_us.push(wait_us);
        } else {
            let cursor = g.wait_cursor;
            g.queue_waits_us[cursor] = wait_us;
            g.wait_cursor = (cursor + 1) % QUEUE_WAIT_WINDOW;
        }
        g.last_response_at = Some(Instant::now());
    }

    pub fn snapshot(&self) -> ServerMetrics {
        let g = self.lock();
        let mut waits = g.queue_waits_us.clone();
        waits.sort_unstable();
        let wall = match g.last_response_at {
            Some(t) => t.duration_since(self.started),
            None => self.started.elapsed(),
        };
        let total_rows = g.real_rows + g.padded_rows;
        ServerMetrics {
            submitted: g.submitted,
            served: g.served,
            shed: g.shed,
            failed: g.failed,
            repaired: g.repaired,
            batches: g.batches,
            real_rows: g.real_rows,
            padded_rows: g.padded_rows,
            batch_fill_ratio: if total_rows == 0 {
                1.0
            } else {
                g.real_rows as f64 / total_rows as f64
            },
            p50_queue: percentile(&waits, 0.50),
            p95_queue: percentile(&waits, 0.95),
            wall,
            throughput_rps: if wall.is_zero() {
                0.0
            } else {
                g.served as f64 / wall.as_secs_f64()
            },
        }
    }
}

/// Nearest-rank percentile over pre-sorted microsecond samples.
fn percentile(sorted_us: &[u64], q: f64) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    Duration::from_micros(sorted_us[idx])
}

/// A point-in-time summary of one server's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMetrics {
    /// Requests accepted by admission control.
    pub submitted: u64,
    /// Requests answered with an output.
    pub served: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests whose batch failed (integrity violation or other
    /// session error); they received an error response, not an output.
    pub failed: u64,
    /// Requests served out of a batch that tripped the redundant
    /// equation and was repaired by the recovery extension — correct
    /// outputs, but evidence of active tampering in the fleet.
    pub repaired: u64,
    /// Virtual batches dispatched.
    pub batches: u64,
    /// Real request rows across all dispatched batches.
    pub real_rows: u64,
    /// All-zero padding rows across all dispatched batches.
    pub padded_rows: u64,
    /// `real_rows / (real_rows + padded_rows)`; `1.0` when no batch
    /// was dispatched (or none needed padding).
    pub batch_fill_ratio: f64,
    /// Median submission → dispatch wait over the most recent 4096
    /// responses.
    pub p50_queue: Duration,
    /// 95th-percentile submission → dispatch wait over the most recent
    /// 4096 responses.
    pub p95_queue: Duration,
    /// Server start → last routed response.
    pub wall: Duration,
    /// `served / wall`.
    pub throughput_rps: f64,
}

impl ServerMetrics {
    /// Converts to the renderer-facing row consumed by
    /// `dk_perf::report::serving_table`.
    pub fn row(&self, label: impl Into<String>) -> ServingRow {
        ServingRow {
            label: label.into(),
            throughput_rps: self.throughput_rps,
            p50_queue_ms: self.p50_queue.as_secs_f64() * 1e3,
            p95_queue_ms: self.p95_queue.as_secs_f64() * 1e3,
            batch_fill: self.batch_fill_ratio,
            served: self.served,
            shed: self.shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_and_snapshots() {
        let rec = MetricsRecorder::new();
        rec.record_submitted();
        rec.record_submitted();
        rec.record_shed();
        rec.record_batch(2, 2);
        rec.record_response(Duration::from_millis(2), true, false);
        rec.record_response(Duration::from_millis(4), false, false);
        let m = rec.snapshot();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.served, 1);
        assert_eq!(m.shed, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.batches, 1);
        assert_eq!((m.real_rows, m.padded_rows), (2, 2));
        assert!((m.batch_fill_ratio - 0.5).abs() < 1e-12);
        assert!(m.p50_queue >= Duration::from_millis(2));
        assert!(m.p95_queue >= m.p50_queue);
        assert!(m.wall > Duration::ZERO);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let m = MetricsRecorder::new().snapshot();
        assert_eq!(m.served, 0);
        assert_eq!(m.batch_fill_ratio, 1.0);
        assert_eq!(m.p50_queue, Duration::ZERO);
        assert_eq!(m.throughput_rps, 0.0);
    }

    /// Regression: the wait buffer is a bounded ring — old samples are
    /// overwritten, memory does not grow with uptime, and percentiles
    /// reflect the recent window.
    #[test]
    fn queue_waits_are_a_bounded_sliding_window() {
        let rec = MetricsRecorder::new();
        for _ in 0..QUEUE_WAIT_WINDOW {
            rec.record_response(Duration::ZERO, true, false);
        }
        for _ in 0..QUEUE_WAIT_WINDOW {
            rec.record_response(Duration::from_millis(7), true, true);
        }
        let m = rec.snapshot();
        assert_eq!(m.served, 2 * QUEUE_WAIT_WINDOW as u64, "counters still see everything");
        assert_eq!(m.repaired, QUEUE_WAIT_WINDOW as u64);
        assert_eq!(
            m.p50_queue,
            Duration::from_millis(7),
            "window holds only the recent samples"
        );
        assert_eq!(rec.lock().queue_waits_us.len(), QUEUE_WAIT_WINDOW);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 0.50), Duration::from_micros(51));
        assert_eq!(percentile(&us, 0.95), Duration::from_micros(95));
        assert_eq!(percentile(&us, 1.0), Duration::from_micros(100));
    }

    #[test]
    fn row_conversion_carries_fields() {
        let rec = MetricsRecorder::new();
        rec.record_batch(3, 1);
        rec.record_response(Duration::from_millis(1), true, false);
        let row = rec.snapshot().row("pool=1");
        assert_eq!(row.label, "pool=1");
        assert_eq!(row.served, 1);
        assert!((row.batch_fill - 0.75).abs() < 1e-12);
    }
}
