//! The autoscale control loop: a controller thread that watches the
//! pressure signals the serving data plane already publishes (ingress
//! queue depth, dispatch-queue depth, shed rate) and resizes the worker
//! pool within `[min_workers, max_workers]`.
//!
//! Scaling **up** spawns a fresh engine lane-set over a new
//! [`dk_gpu::GpuCluster::fork`] with a never-reused slot seed (mask
//! streams must stay unique per engine). Scaling **down** *retires* the
//! newest worker: its feeder stops pulling batches and the engine
//! drains everything already in flight — a retired worker is never
//! killed, so every admitted request completes and, because per-sample
//! quantization makes each response independent of its batch-mates and
//! serving engine, completes **bit-identically** to a fixed-size run.
//!
//! The controller is deliberately boring: threshold-with-hysteresis on
//! metrics deltas, one step per tick. All the correctness weight stays
//! on the data plane's determinism, none on the control loop.

use std::time::Duration;

/// Bounds and cadence for the elastic pool.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// The pool never shrinks below this many workers (≥ 1).
    pub min_workers: usize,
    /// The pool never grows beyond this many workers.
    pub max_workers: usize,
    /// Controller tick interval.
    pub interval: Duration,
    /// Ingress-queue depth at which a tick scales up (pressure that
    /// admission control is about to turn into sheds).
    pub queue_high: usize,
    /// Consecutive calm ticks (no sheds, empty queues) before one
    /// worker is retired.
    pub idle_ticks: u32,
}

impl AutoscaleConfig {
    /// An autoscale range with a 10 ms tick, `queue_high = 1` and a
    /// 3-tick scale-down hysteresis. Bounds are validated at
    /// [`crate::Server::start`], not here.
    pub fn new(min_workers: usize, max_workers: usize) -> Self {
        Self {
            min_workers,
            max_workers,
            interval: Duration::from_millis(10),
            queue_high: 1,
            idle_ticks: 3,
        }
    }

    /// Sets the controller tick interval.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the ingress-depth scale-up threshold.
    pub fn with_queue_high(mut self, queue_high: usize) -> Self {
        self.queue_high = queue_high.max(1);
        self
    }

    /// Sets the calm-tick count required before scaling down.
    pub fn with_idle_ticks(mut self, idle_ticks: u32) -> Self {
        self.idle_ticks = idle_ticks.max(1);
        self
    }
}

/// The pressure signals one controller tick looks at (deltas are
/// against the previous tick).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TickSignals {
    /// Requests shed since the last tick.
    pub shed_delta: u64,
    /// Current ingress-queue occupancy.
    pub queue_depth: u64,
    /// Current dispatch-queue occupancy (batches waiting for a worker).
    pub dispatch_depth: u64,
}

/// What the controller decided to do this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScaleDecision {
    Up,
    Down,
    Hold,
}

/// Pure decision function, separated from the thread so the policy is
/// unit-testable without a running server: scale up on any shed or a
/// standing queue, scale down after `idle_ticks` consecutive calm
/// ticks, hold otherwise. `calm_ticks` is caller-owned hysteresis
/// state; this function updates it.
pub(crate) fn decide(
    cfg: &AutoscaleConfig,
    s: TickSignals,
    active: usize,
    calm_ticks: &mut u32,
) -> ScaleDecision {
    let pressure =
        s.shed_delta > 0 || s.queue_depth >= cfg.queue_high as u64 || s.dispatch_depth > 1;
    if pressure {
        *calm_ticks = 0;
        if active < cfg.max_workers {
            return ScaleDecision::Up;
        }
        return ScaleDecision::Hold;
    }
    let calm = s.queue_depth == 0 && s.dispatch_depth == 0;
    if calm && active > cfg.min_workers {
        *calm_ticks += 1;
        if *calm_ticks >= cfg.idle_ticks {
            *calm_ticks = 0;
            return ScaleDecision::Down;
        }
    } else {
        *calm_ticks = 0;
    }
    ScaleDecision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig::new(1, 4).with_idle_ticks(2)
    }

    #[test]
    fn sheds_scale_up_until_max() {
        let mut calm = 0;
        let s = TickSignals { shed_delta: 3, ..Default::default() };
        assert_eq!(decide(&cfg(), s, 1, &mut calm), ScaleDecision::Up);
        assert_eq!(decide(&cfg(), s, 4, &mut calm), ScaleDecision::Hold, "at max: hold");
    }

    #[test]
    fn standing_queue_scales_up() {
        let mut calm = 0;
        let s = TickSignals { queue_depth: 5, ..Default::default() };
        assert_eq!(decide(&cfg(), s, 2, &mut calm), ScaleDecision::Up);
    }

    #[test]
    fn scale_down_needs_sustained_calm() {
        let mut calm = 0;
        let calm_s = TickSignals::default();
        assert_eq!(decide(&cfg(), calm_s, 3, &mut calm), ScaleDecision::Hold, "1st calm tick");
        assert_eq!(decide(&cfg(), calm_s, 3, &mut calm), ScaleDecision::Down, "2nd calm tick");
        assert_eq!(calm, 0, "hysteresis resets after a decision");
    }

    #[test]
    fn pressure_resets_hysteresis() {
        let mut calm = 0;
        let calm_s = TickSignals::default();
        decide(&cfg(), calm_s, 3, &mut calm);
        assert_eq!(calm, 1);
        let busy = TickSignals { shed_delta: 1, ..Default::default() };
        decide(&cfg(), busy, 4, &mut calm);
        assert_eq!(calm, 0, "a shed wipes accumulated calm");
    }

    #[test]
    fn never_shrinks_below_min() {
        let mut calm = 0;
        let calm_s = TickSignals::default();
        for _ in 0..10 {
            assert_eq!(decide(&cfg(), calm_s, 1, &mut calm), ScaleDecision::Hold);
        }
    }
}
