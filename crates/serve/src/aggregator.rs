//! Dynamic virtual-batch aggregation.
//!
//! DarKnight's throughput story rests on amortizing one TEE
//! encode/decode over `K` inputs (PAPER.md §3.1, §7.1) — but a serving
//! workload arrives one request at a time. The aggregator turns the
//! stream back into full virtual batches:
//!
//! * **hot path** — as soon as `K` requests are pending, a full batch
//!   dispatches immediately (no padding, maximal amortization);
//! * **deadline path** — the aggregator never *holds* a request past
//!   its `max_wait`: on expiry the partial batch dispatches with
//!   all-zero padded rows (the per-sample quantization scales of
//!   `DarknightSession::private_inference_per_sample` make padding
//!   numerically invisible to the real rows). When the pool itself is
//!   saturated the bounded dispatch queue can still delay an expired
//!   batch — the deadline bounds aggregation wait, not end-to-end
//!   latency;
//! * **priority** — when more than `K` requests are pending (workers
//!   busy, dispatch backpressured), higher-priority requests board
//!   first; FIFO within a class. The deadline outranks priority:
//!   overdue requests board unconditionally first, so a steady
//!   high-priority stream cannot starve an expired low-priority
//!   request.
//!
//! The aggregator is a pure data structure — the server owns the
//! threads and channels around it — so every policy above is unit
//! tested without timing races.

use crate::request::{Priority, RequestId, Response};
use dk_linalg::Tensor;
use std::sync::mpsc;
use std::time::Instant;

/// An admitted request waiting for a batch, with its routing state.
#[derive(Debug)]
pub(crate) struct Pending {
    pub id: RequestId,
    pub input: Tensor<f32>,
    pub priority: Priority,
    /// Arrival order, assigned by the aggregator (FIFO tiebreak).
    pub seq: u64,
    pub enqueued: Instant,
    /// Latest instant this request may wait unbatched.
    pub deadline: Instant,
    /// Where the worker routes this request's [`Response`].
    pub reply: mpsc::Sender<Response>,
}

/// A dispatched virtual batch: up to `k` real entries; workers pad the
/// remaining `k - entries.len()` rows with zeros and drop them again
/// before routing responses.
#[derive(Debug)]
pub(crate) struct Batch {
    pub entries: Vec<Pending>,
    pub k: usize,
}

impl Batch {
    /// Real rows / `K`.
    pub fn fill(&self) -> f64 {
        self.entries.len() as f64 / self.k as f64
    }

    /// Number of all-zero rows the worker must add.
    pub fn padded_rows(&self) -> usize {
        self.k - self.entries.len()
    }
}

/// Accumulates pending requests into `K`-sized virtual batches (see
/// module docs for the dispatch policy).
#[derive(Debug)]
pub(crate) struct BatchAggregator {
    k: usize,
    pending: Vec<Pending>,
    seq: u64,
}

impl BatchAggregator {
    /// Creates an aggregator for virtual batches of size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "virtual batch size must be positive");
        Self { k, pending: Vec::new(), seq: 0 }
    }

    /// Number of requests waiting. The server loop compares this
    /// against its backlog cap: absorption from the ingress queue stops
    /// while the backlog is at the cap, so admitted-but-undispatched
    /// work stays bounded under sustained overload.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is waiting.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits a request (assigns its FIFO sequence number).
    pub fn add(&mut self, mut p: Pending) {
        p.seq = self.seq;
        self.seq += 1;
        self.pending.push(p);
    }

    /// The earliest deadline among pending requests — when the server
    /// must wake even if no new request arrives.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|p| p.deadline).min()
    }

    /// Takes one full batch if at least `K` requests are pending:
    /// overdue requests first, then the best by (priority, arrival).
    /// Call in a loop to drain multiple full batches.
    pub fn take_full(&mut self, now: Instant) -> Option<Batch> {
        if self.pending.len() < self.k {
            return None;
        }
        Some(self.take(self.k, now))
    }

    /// Takes a (possibly partial) batch if the earliest deadline has
    /// passed; `None` when nothing is due yet.
    pub fn flush_due(&mut self, now: Instant) -> Option<Batch> {
        match self.next_deadline() {
            Some(d) if d <= now => {
                let n = self.k.min(self.pending.len());
                Some(self.take(n, now))
            }
            _ => None,
        }
    }

    /// Unconditionally takes whatever is pending (shutdown drain);
    /// `None` when empty.
    pub fn drain(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        let n = self.k.min(self.pending.len());
        Some(self.take(n, Instant::now()))
    }

    /// Removes the `n` best pending requests as a batch. Overdue
    /// requests board unconditionally first (the deadline guarantee
    /// outranks priority — otherwise a steady high-priority stream
    /// could starve an expired low-priority request forever); the rest
    /// order by (priority rank, arrival seq).
    fn take(&mut self, n: usize, now: Instant) -> Batch {
        self.pending.sort_by_key(|p| (p.deadline > now, p.priority.rank(), p.seq));
        let rest = self.pending.split_off(n);
        let entries = std::mem::replace(&mut self.pending, rest);
        Batch { entries, k: self.k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pending(id: u64, priority: Priority, wait: Duration) -> Pending {
        // Routing is not under test here; the receiver is dropped.
        let (tx, _rx) = mpsc::channel();
        let now = Instant::now();
        Pending {
            id: RequestId(id),
            input: Tensor::zeros(&[2]),
            priority,
            seq: 0,
            enqueued: now,
            deadline: now + wait,
            reply: tx,
        }
    }

    #[test]
    fn fills_dispatch_immediately_in_fifo_order() {
        let mut agg = BatchAggregator::new(3);
        for i in 0..2 {
            agg.add(pending(i, Priority::Normal, Duration::from_secs(1)));
            assert!(agg.take_full(Instant::now()).is_none(), "must not dispatch below K");
        }
        agg.add(pending(2, Priority::Normal, Duration::from_secs(1)));
        let batch = agg.take_full(Instant::now()).expect("full batch at K");
        assert_eq!(batch.entries.len(), 3);
        assert_eq!(batch.padded_rows(), 0);
        assert_eq!(batch.fill(), 1.0);
        let ids: Vec<u64> = batch.entries.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2], "FIFO within one priority class");
        assert!(agg.is_empty());
    }

    #[test]
    fn deadline_flushes_partial_with_padding() {
        let mut agg = BatchAggregator::new(4);
        agg.add(pending(0, Priority::Normal, Duration::from_millis(5)));
        agg.add(pending(1, Priority::Normal, Duration::from_millis(50)));
        let now = Instant::now();
        assert!(agg.flush_due(now).is_none(), "nothing due yet");
        let due = now + Duration::from_millis(10);
        let batch = agg.flush_due(due).expect("oldest deadline passed");
        assert_eq!(batch.entries.len(), 2);
        assert_eq!(batch.padded_rows(), 2);
        assert_eq!(batch.fill(), 0.5);
        assert!(agg.is_empty(), "a due flush takes everything that fits");
    }

    #[test]
    fn priority_boards_first_when_oversubscribed() {
        let mut agg = BatchAggregator::new(2);
        agg.add(pending(0, Priority::Low, Duration::from_secs(1)));
        agg.add(pending(1, Priority::Normal, Duration::from_secs(1)));
        agg.add(pending(2, Priority::High, Duration::from_secs(1)));
        agg.add(pending(3, Priority::High, Duration::from_secs(1)));
        agg.add(pending(4, Priority::Normal, Duration::from_secs(1)));
        let batch = agg.take_full(Instant::now()).expect("oversubscribed");
        let ids: Vec<u64> = batch.entries.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![2, 3], "both High requests board first, in arrival order");
        let batch = agg.take_full(Instant::now()).expect("second batch");
        let ids: Vec<u64> = batch.entries.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 4], "Normal before Low");
        assert_eq!(agg.len(), 1);
        assert_eq!(agg.drain().expect("drain leftover").entries[0].id.0, 0);
    }

    /// Regression: the deadline guarantee outranks priority. A steady
    /// high-priority stream must not starve an expired low-priority
    /// request out of batch after batch.
    #[test]
    fn overdue_requests_board_before_fresh_high_priority() {
        let mut agg = BatchAggregator::new(2);
        agg.add(pending(0, Priority::Low, Duration::from_millis(1)));
        for i in 1..=3 {
            agg.add(pending(i, Priority::High, Duration::from_secs(5)));
        }
        // Evaluate at a time where the Low request is overdue and the
        // High requests are not.
        let later = Instant::now() + Duration::from_millis(10);
        let batch = agg.take_full(later).expect("oversubscribed");
        let ids: Vec<u64> = batch.entries.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1], "overdue Low boards first, then the best fresh High");
    }

    #[test]
    fn next_deadline_is_the_minimum() {
        let mut agg = BatchAggregator::new(8);
        assert!(agg.next_deadline().is_none());
        agg.add(pending(0, Priority::Normal, Duration::from_millis(30)));
        agg.add(pending(1, Priority::Normal, Duration::from_millis(10)));
        agg.add(pending(2, Priority::Normal, Duration::from_millis(20)));
        let d = agg.next_deadline().unwrap();
        let earliest = agg.pending.iter().find(|p| p.id.0 == 1).unwrap().deadline;
        assert_eq!(d, earliest);
    }

    #[test]
    fn drain_empties_in_batches() {
        let mut agg = BatchAggregator::new(2);
        for i in 0..3 {
            agg.add(pending(i, Priority::Normal, Duration::from_secs(1)));
        }
        assert_eq!(agg.drain().unwrap().entries.len(), 2);
        let last = agg.drain().unwrap();
        assert_eq!(last.entries.len(), 1);
        assert_eq!(last.padded_rows(), 1);
        assert!(agg.drain().is_none());
    }
}
