//! Request and response types for the serving runtime.

use dk_core::DarknightError;
use dk_linalg::Tensor;
use std::sync::mpsc;
use std::time::Duration;

/// Identity of an accepted request, unique within one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Scheduling priority. When more requests are pending than fit in one
/// virtual batch, higher-priority requests board first; within a
/// priority class, arrival order (FIFO) breaks ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Boards before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Boards only when no higher-priority request is waiting.
    Low,
}

impl Priority {
    /// Rank for ordering: lower boards first.
    pub(crate) fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One inference request: a single sample (no batch dimension — e.g.
/// `[C, H, W]` for the conv models), plus scheduling knobs.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    pub(crate) input: Tensor<f32>,
    pub(crate) priority: Priority,
    pub(crate) max_wait: Option<Duration>,
}

impl InferenceRequest {
    /// Wraps a single sample (sample shape, no leading batch dim).
    pub fn new(input: Tensor<f32>) -> Self {
        Self { input, priority: Priority::default(), max_wait: None }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Caps how long the aggregator may hold this request while waiting
    /// for the virtual batch to fill; on expiry the batch dispatches
    /// partially filled (padded). Defaults to the server-wide
    /// `max_batch_wait`.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = Some(max_wait);
        self
    }

    /// The sample tensor.
    pub fn input(&self) -> &Tensor<f32> {
        &self.input
    }

    /// The scheduling priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// Outcome of the integrity machinery for one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityVerdict {
    /// The redundant equation held on every offloaded layer of the
    /// batch this request rode in.
    Verified,
    /// The session ran without the redundant equation (integrity
    /// disabled in the server's `DarknightConfig`).
    Unchecked,
    /// At least one layer of the batch failed the redundant equation,
    /// but the session's recovery extension localized the tampering
    /// workers and repaired their results in the TEE: the output is
    /// correct, *and* the fleet is actively tampering — operators
    /// should treat this as an alarm, not a success.
    Repaired,
    /// The batch failed an integrity check and no output is available.
    Violated,
}

/// The served result routed back to one caller.
#[derive(Debug)]
pub struct Response {
    /// Which request this answers.
    pub id: RequestId,
    /// The per-request output (sample shape, no batch dim), or the
    /// session error that aborted its batch.
    pub output: Result<Tensor<f32>, DarknightError>,
    /// Integrity outcome of the batch this request rode in.
    pub verdict: IntegrityVerdict,
    /// Submission → batch-dispatch wait.
    pub queue_wait: Duration,
    /// Batch-dispatch → response time (the session's compute).
    pub service_time: Duration,
    /// Real rows / `K` of the virtual batch this request rode in.
    pub batch_fill: f64,
}

impl Response {
    /// The output tensor, if the request succeeded.
    pub fn tensor(&self) -> Option<&Tensor<f32>> {
        self.output.as_ref().ok()
    }
}

/// Why admission control refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded ingress queue is full (overload).
    QueueFull,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The input contains NaN/Inf values, which would abort the whole
    /// virtual batch it rides in (quantization is only defined on
    /// finite values) — rejected at admission so one poisoned request
    /// cannot fail innocent batch-mates. Retrying without fixing the
    /// input will not help.
    NonFiniteInput,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "ingress queue full"),
            ShedReason::ShuttingDown => write!(f, "server shutting down"),
            ShedReason::NonFiniteInput => write!(f, "input contains non-finite values"),
        }
    }
}

/// A shed request: the reason plus the request handed back so the
/// caller can retry or fail over.
#[derive(Debug)]
pub struct Shed {
    /// Why the request was refused.
    pub reason: ShedReason,
    /// The refused request, returned to the caller intact.
    pub request: InferenceRequest,
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request shed: {}", self.reason)
    }
}

impl std::error::Error for Shed {}

/// The caller's side of one accepted request: blocks until the routed
/// [`Response`] arrives.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: RequestId,
    pub(crate) rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// The id assigned at admission.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the response arrives. Returns `None` only if the
    /// server died without routing a response (worker panic).
    pub fn wait(self) -> Option<Response> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ranks_order() {
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Low.rank());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn request_builder_chains() {
        let r = InferenceRequest::new(Tensor::zeros(&[3, 4, 4]))
            .with_priority(Priority::High)
            .with_max_wait(Duration::from_millis(5));
        assert_eq!(r.priority(), Priority::High);
        assert_eq!(r.max_wait, Some(Duration::from_millis(5)));
        assert_eq!(r.input().shape(), &[3, 4, 4]);
    }

    #[test]
    fn shed_displays_reason() {
        let shed = Shed {
            reason: ShedReason::QueueFull,
            request: InferenceRequest::new(Tensor::zeros(&[1])),
        };
        assert!(shed.to_string().contains("queue full"));
    }
}
