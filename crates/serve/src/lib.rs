//! `dk_serve` — concurrent private-inference serving with dynamic
//! virtual-batch aggregation.
//!
//! DarKnight's performance story (paper §3.1, §7.1) amortizes one TEE
//! encode/decode over a virtual batch of `K` inputs. A production
//! deployment, though, does not receive `K`-sized batches — it receives
//! a stream of independent single-sample requests from many callers.
//! This crate closes that gap:
//!
//! * [`ServerHandle::submit`] accepts individual [`InferenceRequest`]s
//!   (with priorities and per-request aggregation deadlines) from any
//!   number of caller threads, behind bounded-queue admission control
//!   that sheds on overload instead of queueing unboundedly;
//! * an aggregator thread assembles requests into `K`-sized virtual
//!   batches — full batches dispatch immediately, and the aggregator
//!   never holds a request past its deadline: on expiry the partial
//!   batch dispatches padded with all-zero rows, which are dropped
//!   again before responses are routed (once the pool itself is
//!   saturated, the bounded dispatch queue can still delay an expired
//!   batch until a worker frees up — the deadline bounds aggregation
//!   wait, not end-to-end latency);
//! * a pool of worker threads, each owning its own
//!   [`dk_core::DarknightSession`] over a [`dk_gpu::GpuCluster::fork`]
//!   of one shared fleet, executes the batches;
//! * each caller's [`Ticket`] resolves to a [`Response`] carrying the
//!   output, an [`IntegrityVerdict`], and queue/service timings, and
//!   [`ServerMetrics`] snapshots the deployment (throughput, p50/p95
//!   queue latency, batch-fill ratio, shed count) for
//!   `dk_perf::report::serving_table`.
//!
//! **Exactness under aggregation.** Sessions run
//! [`dk_core::DarknightSession::private_inference_per_sample`], which
//! quantizes every row with its own scale, so the answer each caller
//! receives is bit-for-bit the answer [`dk_core::QuantizedReference`]
//! produces for that request *alone* — batch-mates and padding cannot
//! perturb it. The property tests in `tests/serving_exactness.rs` pin
//! this across random batch-fill patterns.
//!
//! # Example
//!
//! ```
//! use dk_core::DarknightConfig;
//! use dk_gpu::GpuCluster;
//! use dk_linalg::Tensor;
//! use dk_nn::arch::mini_vgg;
//! use dk_serve::{InferenceRequest, Server, ServerConfig};
//!
//! let model = mini_vgg(8, 4, 42);
//! let cfg = DarknightConfig::new(4, 1).with_integrity(true);
//! let cluster = GpuCluster::honest(cfg.workers_required(), 7);
//! let server = Server::start(ServerConfig::new(cfg, &[3, 8, 8]), &model, &cluster).unwrap();
//! let handle = server.handle();
//! let x = Tensor::<f32>::from_fn(&[3, 8, 8], |i| ((i % 11) as f32 - 5.0) * 0.05);
//! let ticket = handle.submit(InferenceRequest::new(x)).unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.output.unwrap().shape(), &[4]);
//! let metrics = server.shutdown();
//! assert_eq!(metrics.served, 1);
//! ```

mod aggregator;
mod autoscale;
mod error;
mod metrics;
mod request;
mod server;

pub use autoscale::AutoscaleConfig;
pub use error::{ConfigError, ServeError};
pub use metrics::ServerMetrics;
pub use request::{
    InferenceRequest, IntegrityVerdict, Priority, RequestId, Response, Shed, ShedReason, Ticket,
};
pub use server::{Server, ServerConfig, ServerHandle};
