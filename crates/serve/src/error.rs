//! Typed startup errors: configuration validation and session
//! construction failures, returned from [`crate::Server::start`]
//! instead of panicking inside builders.

use dk_core::DarknightError;

/// A [`crate::ServerConfig`] field that cannot describe a runnable
/// deployment. Builders accept any value; validation happens once, at
/// [`crate::Server::start`], so configs can be assembled piecemeal
/// (e.g. from flags) without panicking halfway through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0` — a server needs at least one pool worker.
    ZeroWorkers,
    /// `queue_capacity == 0` — admission control needs a queue.
    ZeroQueueCapacity,
    /// `dispatch_depth == 0` — the aggregator needs somewhere to put
    /// batches.
    ZeroDispatchDepth,
    /// `pipeline_lanes == 0` — an engine needs at least one TEE lane.
    ZeroPipelineLanes,
    /// The autoscale range is empty or unusable: `min == 0` or
    /// `min > max`.
    AutoscaleRange {
        /// Configured lower bound.
        min: usize,
        /// Configured upper bound.
        max: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "a server needs at least one worker"),
            ConfigError::ZeroQueueCapacity => write!(f, "ingress queue needs capacity"),
            ConfigError::ZeroDispatchDepth => write!(f, "dispatch queue needs capacity"),
            ConfigError::ZeroPipelineLanes => write!(f, "an engine needs at least one lane"),
            ConfigError::AutoscaleRange { min, max } => write!(
                f,
                "autoscale range [{min}, {max}] is invalid (need 1 <= min <= max)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything [`crate::Server::start`] can fail with: a bad
/// configuration, or a session-construction error from the engines it
/// builds (insufficient fleet, unquantizable weights, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The [`crate::ServerConfig`] failed validation.
    Config(ConfigError),
    /// Engine/session construction failed.
    Session(DarknightError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "invalid server config: {e}"),
            ServeError::Session(e) => write!(f, "session construction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            ServeError::Session(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<DarknightError> for ServeError {
    fn from(e: DarknightError) -> Self {
        ServeError::Session(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::from(ConfigError::AutoscaleRange { min: 3, max: 2 });
        assert!(e.to_string().contains("[3, 2]"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ServeError::from(DarknightError::InsufficientWorkers { required: 5, available: 2 });
        assert!(e.to_string().contains("needs 5"));
    }
}
