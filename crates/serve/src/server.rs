//! The serving runtime: admission → aggregation → pipelined engine pool
//! → response routing.
//!
//! Thread topology (all std, matching the workspace's no-crossbeam
//! convention):
//!
//! ```text
//! callers ──try_send──▶ ingress (bounded: admission control)
//!                          │ recv / recv_timeout(next deadline)
//!                      aggregator thread  [BatchAggregator]
//!                          │ send (bounded: dispatch backpressure)
//!                      dispatch queue
//!                          │ shared Mutex<Receiver> (work stealing)
//!            ┌─────────────┼─────────────┐
//!        worker 0      worker 1  …   worker N-1
//!        (each: feeder ▶ PipelineEngine lanes ▶ router)
//!            │               │             │
//!            └── per-request mpsc Sender ──┴──▶ Ticket::wait
//! ```
//!
//! Every pool worker owns a [`dk_core::PipelineEngine`] over a
//! [`GpuCluster::fork`] of one shared fleet: a feeder thread pulls
//! batches off the shared dispatch queue into the engine's input stream,
//! `pipeline_lanes` TEE lane threads serve them concurrently over the
//! engine's persistent GPU worker threads — so the TEE encodes batch
//! `t+1` while the fleet computes batch `t` (§7.1) — and a router
//! thread sends per-request responses back in completion order.
//! Responses are bit-for-bit unchanged from the sequential path (the
//! engine's determinism guarantee) — per-sample quantization scales make
//! every answer identical to running that request alone.
//!
//! Backpressure is a chain: slow engines fill the dispatch queue, a
//! full dispatch queue blocks the aggregator, a blocked aggregator
//! stops absorbing once its own backlog reaches the cap (it never
//! hoards more than `max(K, queue_capacity)` pending requests), and
//! the bounded ingress then fills — at which point `submit` sheds
//! instead of queueing unboundedly (the overload policy). Outstanding
//! admitted work is therefore bounded end to end (the engine's input
//! channel is bounded by its lane count).

use crate::aggregator::{Batch, BatchAggregator, Pending};
use crate::autoscale::{decide, AutoscaleConfig, ScaleDecision, TickSignals};
use crate::error::{ConfigError, ServeError};
use crate::metrics::{MetricsRecorder, ServerMetrics};
use crate::request::{
    InferenceRequest, IntegrityVerdict, RequestId, Response, Shed, ShedReason, Ticket,
};
use dk_core::engine::InferenceOutcome;
use dk_core::{DarknightConfig, DarknightError, EngineOptions, PipelineEngine};
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::Sequential;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a retired (or shutdown-pending) feeder sleeps between
/// retire-flag checks while the dispatch queue is empty. Arrivals wake
/// it immediately; this only bounds how fast a *quiet* feeder notices
/// it was retired.
const FEEDER_POLL: Duration = Duration::from_millis(5);

/// Deployment parameters for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-worker session parameters; `session.k()` is the virtual
    /// batch size requests are aggregated into.
    pub session: DarknightConfig,
    /// Shape of one request sample (no batch dimension).
    pub sample_shape: Vec<usize>,
    /// Session threads in the pool.
    pub workers: usize,
    /// Bounded ingress queue length; when full, `submit` sheds.
    pub queue_capacity: usize,
    /// Default cap on how long a request may wait for its batch to
    /// fill before a padded partial batch dispatches.
    pub max_batch_wait: Duration,
    /// Bounded dispatch queue length between aggregator and pool.
    pub dispatch_depth: usize,
    /// In-flight virtual batches per worker engine (TEE lane threads);
    /// 1 disables overlap.
    pub pipeline_lanes: usize,
    /// Elastic-pool controller; `None` keeps the pool fixed at
    /// `workers` (unless resized manually via [`Server::resize_pool`]).
    pub autoscale: Option<AutoscaleConfig>,
}

impl ServerConfig {
    /// A 2-worker pool with a 64-deep ingress queue and a 2 ms
    /// aggregation deadline.
    pub fn new(session: DarknightConfig, sample_shape: &[usize]) -> Self {
        Self {
            session,
            sample_shape: sample_shape.to_vec(),
            workers: 2,
            queue_capacity: 64,
            max_batch_wait: Duration::from_millis(2),
            dispatch_depth: 2,
            pipeline_lanes: 2,
            autoscale: None,
        }
    }

    /// Sets the pool size (the *initial* size when autoscaling). No
    /// validation happens here — [`Server::start`] returns
    /// [`ConfigError::ZeroWorkers`] for `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the ingress queue bound (admission control). Validated at
    /// [`Server::start`].
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the default aggregation deadline.
    pub fn with_max_batch_wait(mut self, max_batch_wait: Duration) -> Self {
        self.max_batch_wait = max_batch_wait;
        self
    }

    /// Sets the dispatch queue depth. Validated at [`Server::start`].
    pub fn with_dispatch_depth(mut self, dispatch_depth: usize) -> Self {
        self.dispatch_depth = dispatch_depth;
        self
    }

    /// Sets the per-worker pipeline lane count (in-flight virtual
    /// batches; 1 disables stage overlap). Validated at
    /// [`Server::start`].
    pub fn with_pipeline_lanes(mut self, pipeline_lanes: usize) -> Self {
        self.pipeline_lanes = pipeline_lanes;
        self
    }

    /// Enables the autoscale controller (see [`AutoscaleConfig`]). The
    /// initial pool size is `workers` clamped into the autoscale range.
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Checks every bound the runtime depends on; called once by
    /// [`Server::start`].
    fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.dispatch_depth == 0 {
            return Err(ConfigError::ZeroDispatchDepth);
        }
        if self.pipeline_lanes == 0 {
            return Err(ConfigError::ZeroPipelineLanes);
        }
        if let Some(a) = &self.autoscale {
            if a.min_workers == 0 || a.min_workers > a.max_workers {
                return Err(ConfigError::AutoscaleRange {
                    min: a.min_workers,
                    max: a.max_workers,
                });
            }
        }
        Ok(())
    }
}

/// What flows through the ingress channel: requests, or the single
/// stop signal [`Server::shutdown`] injects.
enum Ingress {
    Request(Pending),
    Stop,
}

/// A caller-side handle: cheap to clone, shareable across client
/// threads. All clones feed the same server.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    ingress: mpsc::SyncSender<Ingress>,
    next_id: Arc<AtomicU64>,
    metrics: Arc<MetricsRecorder>,
    sample_shape: Vec<usize>,
    max_batch_wait: Duration,
}

impl ServerHandle {
    /// Submits a request. On acceptance returns a [`Ticket`] that
    /// blocks until the response is routed back; on overload (ingress
    /// queue full) or after shutdown the request is handed back in a
    /// [`Shed`].
    ///
    /// # Panics
    ///
    /// Panics if the request's input shape differs from the server's
    /// configured `sample_shape` (a caller bug, not an overload
    /// condition).
    pub fn submit(&self, request: InferenceRequest) -> Result<Ticket, Shed> {
        assert_eq!(
            request.input.shape(),
            &self.sample_shape[..],
            "request sample shape does not match the server's model input"
        );
        // Reject non-finite inputs here, where only the offending
        // caller pays: admitted into a batch, a single NaN row would
        // abort quantization for the whole virtual batch and fail its
        // innocent batch-mates.
        if !request.input.as_slice().iter().all(|v| v.is_finite()) {
            self.metrics.record_shed();
            return Err(Shed { reason: ShedReason::NonFiniteInput, request });
        }
        let max_wait = request.max_wait;
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (reply_tx, reply_rx) = mpsc::channel();
        let now = Instant::now();
        // Clamp to a day so a huge caller-supplied max_wait (e.g.
        // Duration::MAX as "no deadline") cannot overflow Instant
        // arithmetic; a day already means "effectively never" here.
        let wait = max_wait.unwrap_or(self.max_batch_wait).min(Duration::from_secs(86_400));
        let pending = Pending {
            id,
            input: request.input,
            priority: request.priority,
            seq: 0, // assigned by the aggregator
            enqueued: now,
            deadline: now + wait,
            reply: reply_tx,
        };
        match self.ingress.try_send(Ingress::Request(pending)) {
            Ok(()) => {
                self.metrics.record_submitted();
                self.metrics.record_enqueued();
                Ok(Ticket { id, rx: reply_rx })
            }
            Err(e) => {
                let (reason, msg) = match e {
                    TrySendError::Full(m) => (ShedReason::QueueFull, m),
                    TrySendError::Disconnected(m) => (ShedReason::ShuttingDown, m),
                };
                let Ingress::Request(p) = msg else { unreachable!("submit only sends requests") };
                self.metrics.record_shed();
                Err(Shed {
                    reason,
                    request: InferenceRequest { input: p.input, priority: p.priority, max_wait },
                })
            }
        }
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics.snapshot()
    }

    /// Prometheus text exposition of the server's metrics — the
    /// `/metrics` endpoint body for whatever transport fronts this
    /// server.
    pub fn render_metrics(&self) -> String {
        self.metrics.render_prometheus()
    }

    /// The server's metrics as a flat JSON document.
    pub fn render_metrics_json(&self) -> String {
        self.metrics.render_json()
    }
}

/// The elastic worker pool: everything needed to mint a new worker on
/// demand (prototype model/fleet/config), plus the live slot table.
///
/// Slot numbers increase monotonically and are never reused — each
/// slot's engine seed feeds a distinct mask-stream universe, and
/// replaying a retired slot's seed would replay its masks.
struct Pool {
    session: DarknightConfig,
    opts: EngineOptions,
    dispatch: Arc<Mutex<mpsc::Receiver<Batch>>>,
    metrics: Arc<MetricsRecorder>,
    /// Prototypes and the slot table live behind one lock — the model
    /// prototype owns a scratch [`dk_linalg` workspace] and is only
    /// `Send`, so it cannot sit in a bare `Sync` field.
    inner: Mutex<PoolInner>,
}

struct PoolInner {
    model: Sequential,
    cluster: GpuCluster,
    next_slot: u64,
    /// Workers currently being fed, in spawn order (retire pops the
    /// newest).
    active: Vec<WorkerSlot>,
    /// Retired workers still draining their in-flight batches; joined
    /// at shutdown.
    retired: Vec<JoinHandle<()>>,
}

struct WorkerSlot {
    retire: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("active", &self.active_count()).finish_non_exhaustive()
    }
}

impl Pool {
    fn active_count(&self) -> usize {
        lock_unpoisoned(&self.inner).active.len()
    }

    /// Spawns one worker on a fresh slot: a new [`PipelineEngine`] over
    /// a [`GpuCluster::fork`] with a slot-derived session seed (no two
    /// slots ever share a mask stream), fed from the shared dispatch
    /// queue.
    fn spawn_worker(&self) -> Result<(), DarknightError> {
        let mut inner = lock_unpoisoned(&self.inner);
        let slot = inner.next_slot;
        let seed = self.session.seed() ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let session_cfg = self.session.with_seed(seed);
        let engine =
            PipelineEngine::new(session_cfg, inner.cluster.fork(seed ^ 0x5EED), self.opts)?;
        let retire = Arc::new(AtomicBool::new(false));
        let rx = self.dispatch.clone();
        let metrics = self.metrics.clone();
        let model = inner.model.clone();
        let flag = retire.clone();
        let handle = std::thread::Builder::new()
            .name(format!("dk-serve-worker-{slot}"))
            .spawn(move || worker_loop(engine, model, &rx, &metrics, &flag))
            .expect("spawn worker thread");
        inner.next_slot = slot + 1;
        inner.active.push(WorkerSlot { retire, handle });
        self.metrics.set_pool_workers(inner.active.len());
        self.metrics.record_scale(true);
        Ok(())
    }

    /// Retires the newest active worker: stop feeding, never kill. The
    /// worker finishes every batch already in its engine (bit-identical
    /// to a fixed-size run — per-sample quantization makes each
    /// response independent of which engine serves it) and exits; its
    /// thread is joined at shutdown. Returns `false` when only one
    /// worker remains (the pool never starves the dispatch queue).
    fn retire_worker(&self) -> bool {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.active.len() <= 1 {
            return false;
        }
        let WorkerSlot { retire, handle } = inner.active.pop().expect("len checked above");
        retire.store(true, Ordering::Release);
        inner.retired.push(handle);
        self.metrics.set_pool_workers(inner.active.len());
        self.metrics.record_scale(false);
        true
    }

    /// Spawns/retires toward `target` (clamped to at least 1), one step
    /// at a time. Returns the resulting active count.
    fn resize(&self, target: usize) -> Result<usize, DarknightError> {
        let target = target.max(1);
        loop {
            let n = self.active_count();
            if n < target {
                self.spawn_worker()?;
            } else if n > target {
                if !self.retire_worker() {
                    return Ok(self.active_count());
                }
            } else {
                return Ok(n);
            }
        }
    }

    /// Joins every worker thread, active and retired (shutdown path —
    /// the dispatch sender must already be dropped or feeders never
    /// exit).
    fn join_all(&self) {
        let (active, retired) = {
            let mut inner = lock_unpoisoned(&self.inner);
            self.metrics.set_pool_workers(0);
            (std::mem::take(&mut inner.active), std::mem::take(&mut inner.retired))
        };
        for slot in active {
            // A worker that died mid-run already shed or dropped its
            // in-flight requests; the survivors' metrics still count.
            let _ = slot.handle.join();
        }
        for handle in retired {
            let _ = handle.join();
        }
    }
}

/// A running serving deployment (see module docs for the topology).
///
/// Dropping a `Server` without calling [`Server::shutdown`] detaches
/// its threads; they keep serving outstanding [`ServerHandle`] clones
/// and exit when the last one is dropped.
#[derive(Debug)]
pub struct Server {
    /// The prototype handle all caller handles are cloned from.
    handle: ServerHandle,
    aggregator: JoinHandle<()>,
    pool: Arc<Pool>,
    /// Autoscale controller: dropping the sender stops it.
    controller: Option<(mpsc::Sender<()>, JoinHandle<()>)>,
}

impl Server {
    /// Builds the pool and starts serving.
    ///
    /// Every worker gets its own [`PipelineEngine`] over a
    /// [`GpuCluster::fork`] of `cluster` (same fleet behaviours,
    /// independent execution state) and its own clone of `model`, with
    /// per-slot session seeds so no two workers — across the server's
    /// whole elastic lifetime — share a mask stream. Within each
    /// engine, `pipeline_lanes` TEE threads stream batches over
    /// persistent per-(simulated-)GPU dispatch threads. With
    /// [`ServerConfig::with_autoscale`], a controller thread resizes
    /// the pool between `min_workers` and `max_workers` from the queue
    /// and shed pressure signals.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for invalid bounds (zero workers/queues,
    /// an empty autoscale range); [`ServeError::Session`] if the fleet
    /// is too small for the session configuration or the model's
    /// weights cannot be quantized.
    pub fn start(
        config: ServerConfig,
        model: &Sequential,
        cluster: &GpuCluster,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let k = config.session.k();
        // Fail fast on a model whose weights cannot survive Algorithm 1
        // quantization: the engines extract this exact plan inside
        // their workers, and a worker dying there would silently strand
        // every request routed to it.
        let _ = dk_core::StepPlan::extract(model, config.session.quant())
            .map_err(ServeError::Session)?;

        let metrics = Arc::new(MetricsRecorder::new());
        let (ingress_tx, ingress_rx) = mpsc::sync_channel::<Ingress>(config.queue_capacity);
        let (dispatch_tx, dispatch_rx) = mpsc::sync_channel::<Batch>(config.dispatch_depth);
        let pool = Arc::new(Pool {
            session: config.session,
            opts: EngineOptions::default().with_lanes(config.pipeline_lanes),
            dispatch: Arc::new(Mutex::new(dispatch_rx)),
            metrics: metrics.clone(),
            inner: Mutex::new(PoolInner {
                model: model.clone(),
                cluster: cluster.fork(config.session.seed() ^ 0x9001),
                next_slot: 0,
                active: Vec::new(),
                retired: Vec::new(),
            }),
        });

        // Build the initial pool before spawning the aggregator, so a
        // bad session configuration fails fast with no threads to
        // clean up (the first spawn constructs a full engine and hits
        // every validation path the rest would).
        let initial = match &config.autoscale {
            Some(a) => config.workers.clamp(a.min_workers, a.max_workers),
            None => config.workers,
        };
        for _ in 0..initial {
            if let Err(e) = pool.spawn_worker() {
                drop(ingress_tx); // feeders exit once dispatch_tx dies below
                drop(dispatch_tx);
                pool.join_all();
                return Err(ServeError::Session(e));
            }
        }

        let aggregator = {
            let metrics = metrics.clone();
            let backlog_cap = config.queue_capacity.max(k);
            std::thread::Builder::new()
                .name("dk-serve-aggregator".into())
                .spawn(move || aggregate_loop(k, backlog_cap, &ingress_rx, &dispatch_tx, &metrics))
                .expect("spawn aggregator thread")
        };

        let controller = config.autoscale.map(|auto| {
            let (stop_tx, stop_rx) = mpsc::channel::<()>();
            let pool = pool.clone();
            let metrics = metrics.clone();
            let handle = std::thread::Builder::new()
                .name("dk-serve-autoscale".into())
                .spawn(move || controller_loop(&auto, &pool, &metrics, &stop_rx))
                .expect("spawn autoscale thread");
            (stop_tx, handle)
        });

        Ok(Self {
            handle: ServerHandle {
                ingress: ingress_tx,
                next_id: Arc::new(AtomicU64::new(0)),
                metrics,
                sample_shape: config.sample_shape,
                max_batch_wait: config.max_batch_wait,
            },
            aggregator,
            pool,
            controller,
        })
    }

    /// A new caller handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        self.handle.metrics()
    }

    /// Workers currently being fed.
    pub fn pool_workers(&self) -> usize {
        self.pool.active_count()
    }

    /// Manually resizes the pool toward `workers` (clamped to ≥ 1):
    /// scale-up spawns fresh never-reused-seed engines, scale-down
    /// retires newest-first with the same drain-to-completion guarantee
    /// as the autoscale controller. Mostly useful for tests and
    /// operational overrides; with autoscaling enabled the controller
    /// will keep adjusting afterwards. Returns the resulting size.
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] if a new engine cannot be constructed.
    pub fn resize_pool(&self, workers: usize) -> Result<usize, ServeError> {
        Ok(self.pool.resize(workers)?)
    }

    /// Stops the server: every request admitted before this call is
    /// still served (partial batches dispatch padded), the pool is
    /// joined — retired workers included — and the final metrics are
    /// returned.
    ///
    /// Outstanding [`ServerHandle`] clones remain valid but their
    /// `submit` sheds with [`ShedReason::ShuttingDown`] once the stop
    /// signal is processed; a submission racing the stop signal may
    /// instead be accepted and dropped, in which case its
    /// [`Ticket::wait`] returns `None`.
    pub fn shutdown(self) -> ServerMetrics {
        let Server { handle, aggregator, pool, controller } = self;
        // A blocking send: the stop signal queues behind admitted
        // requests, which is exactly the drain order we want. The
        // server's own sender is dropped right after, ahead of the
        // joins.
        let _ = handle.ingress.send(Ingress::Stop);
        let ServerHandle { metrics, .. } = handle;
        // Stop the controller first so it cannot resize a draining
        // pool, then the aggregator (whose exit drops the dispatch
        // sender and lets the feeders run dry), then the workers.
        if let Some((stop_tx, h)) = controller {
            drop(stop_tx);
            let _ = h.join();
        }
        let _ = aggregator.join();
        pool.join_all();
        metrics.snapshot()
    }
}

/// The autoscale controller thread: ticks on `auto.interval`, reads the
/// pressure signals, and resizes one step at a time. `stop` doubles as
/// the tick timer — dropping the sender wakes and stops the loop.
fn controller_loop(
    auto: &AutoscaleConfig,
    pool: &Pool,
    metrics: &MetricsRecorder,
    stop: &mpsc::Receiver<()>,
) {
    let mut last_shed = metrics.shed_total();
    let mut calm_ticks = 0u32;
    loop {
        match stop.recv_timeout(auto.interval) {
            Err(RecvTimeoutError::Timeout) => {}
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
        let shed = metrics.shed_total();
        let signals = TickSignals {
            shed_delta: shed - last_shed,
            queue_depth: metrics.queue_depth_now(),
            dispatch_depth: metrics.dispatch_depth_now(),
        };
        last_shed = shed;
        match decide(auto, signals, pool.active_count(), &mut calm_ticks) {
            ScaleDecision::Up => {
                // An engine that cannot be built now (e.g. the fleet
                // prototype shrank) is not fatal: the pool keeps
                // serving at its current size and retries next tick
                // (spawn/retire record the scale counters themselves).
                let _ = pool.spawn_worker();
            }
            ScaleDecision::Down => {
                let _ = pool.retire_worker();
            }
            ScaleDecision::Hold => {}
        }
    }
}

/// The aggregator thread: blocks on ingress (bounded by the earliest
/// pending deadline), drains greedily up to `backlog_cap`, dispatches
/// full batches on the hot path and padded partial batches on deadline
/// expiry.
fn aggregate_loop(
    k: usize,
    backlog_cap: usize,
    ingress: &mpsc::Receiver<Ingress>,
    dispatch: &mpsc::SyncSender<Batch>,
    metrics: &MetricsRecorder,
) {
    let mut agg = BatchAggregator::new(k);
    let mut open = true;
    while open {
        // Wait for the next event: a new request, or the earliest
        // deadline among pending requests.
        match agg.next_deadline() {
            None => match ingress.recv() {
                Ok(Ingress::Request(p)) => {
                    metrics.record_dequeued();
                    agg.add(p);
                }
                Ok(Ingress::Stop) | Err(_) => open = false,
            },
            Some(d) => {
                let now = Instant::now();
                if d > now {
                    match ingress.recv_timeout(d - now) {
                        Ok(Ingress::Request(p)) => {
                            metrics.record_dequeued();
                            agg.add(p);
                        }
                        Ok(Ingress::Stop) | Err(RecvTimeoutError::Disconnected) => open = false,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                }
            }
        }
        open &= absorb_available(ingress, &mut agg, backlog_cap, metrics);
        // Hot path: dispatch full batches, re-absorbing arrivals after
        // every (possibly blocking) send so a high-priority request can
        // still overtake batches that have not boarded yet.
        while let Some(batch) = agg.take_full(Instant::now()) {
            if send_batch(dispatch, batch, metrics).is_err() {
                return;
            }
            open &= absorb_available(ingress, &mut agg, backlog_cap, metrics);
        }
        // Deadline path: the oldest pending request is due — dispatch
        // partially filled (the worker pads).
        while let Some(batch) = agg.flush_due(Instant::now()) {
            if send_batch(dispatch, batch, metrics).is_err() {
                return;
            }
            open &= absorb_available(ingress, &mut agg, backlog_cap, metrics);
        }
    }
    // Shutdown drain: every admitted request still gets served.
    while let Some(batch) = agg.drain() {
        if send_batch(dispatch, batch, metrics).is_err() {
            return;
        }
    }
}

/// Non-blocking drain of what is already in the ingress queue, so
/// bursts form full batches instead of trickling one recv at a time —
/// but never beyond `backlog_cap` pending requests. The cap is what
/// makes admission control real: without it, a backpressured
/// aggregator would keep siphoning the (refilling) bounded ingress
/// into an unbounded backlog, and `submit` would never shed. Requests
/// left in the channel simply wait; a full channel sheds at `submit`.
/// Returns `false` if the stop signal was absorbed.
fn absorb_available(
    ingress: &mpsc::Receiver<Ingress>,
    agg: &mut BatchAggregator,
    backlog_cap: usize,
    metrics: &MetricsRecorder,
) -> bool {
    while agg.len() < backlog_cap {
        match ingress.try_recv() {
            Ok(Ingress::Request(p)) => {
                metrics.record_dequeued();
                agg.add(p);
            }
            Ok(Ingress::Stop) => return false,
            Err(_) => break,
        }
    }
    true
}

/// Locks a mutex, recovering the value if a previous holder panicked.
/// Everything behind these locks is mutated through single push / pop /
/// insert / remove calls (no multi-step invariants), so the data is
/// consistent even after a panicking holder — the poison flag alone must
/// not take down the rest of the server with the one dead thread.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn send_batch(
    dispatch: &mpsc::SyncSender<Batch>,
    batch: Batch,
    metrics: &MetricsRecorder,
) -> Result<(), ()> {
    metrics.record_batch(batch.entries.len(), batch.padded_rows());
    // Recorded before the (possibly blocking) send so a batch stuck
    // behind a full dispatch queue still reads as dispatch pressure to
    // the autoscale controller.
    metrics.record_dispatch_enqueued();
    // A send error means every worker died (panic); the entries'
    // reply senders are dropped with the batch and callers observe the
    // server as gone.
    dispatch.send(batch).map_err(|_| {
        metrics.record_dispatch_dequeued();
    })
}

/// Per-batch metadata the router needs to turn an engine outcome back
/// into per-request responses.
struct InFlight {
    entries: Vec<Pending>,
    dispatched_at: Instant,
    fill: f64,
}

/// One pool worker: a feeder thread pulls batches off the shared
/// dispatch queue into its [`PipelineEngine`]'s input stream, the
/// engine's TEE lanes serve them concurrently (encode of batch `t+1`
/// under the shadow of GPU work for batch `t`), and a router thread
/// sends per-request responses in completion order.
fn worker_loop(
    mut engine: PipelineEngine,
    model: Sequential,
    dispatch: &Mutex<mpsc::Receiver<Batch>>,
    metrics: &MetricsRecorder,
    retire: &AtomicBool,
) {
    let k = engine.config().k();
    let integrity = engine.config().integrity();
    let lanes = engine.options().lanes;
    let (in_tx, in_rx) = mpsc::sync_channel::<(u64, Tensor<f32>)>(lanes);
    let (out_tx, out_rx) = mpsc::channel::<InferenceOutcome>();
    let in_flight: Mutex<HashMap<u64, InFlight>> = Mutex::new(HashMap::new());
    // Recycled batch tensors: the router pushes each served batch's
    // input buffer here and the feeder reuses it for the next batch
    // (padding rows re-zeroed), so steady-state serving assembles
    // batches without allocating. Bounded by the in-flight batch count.
    let spare_batches: Mutex<Vec<Tensor<f32>>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        // Feeder: dispatch queue → engine input. The bounded engine
        // input keeps the backpressure chain intact: full lanes block
        // the feeder, which leaves batches in the dispatch queue.
        let in_flight_ref = &in_flight;
        let spare_ref = &spare_batches;
        scope.spawn(move || {
            let mut seq = 0u64;
            loop {
                // Drain-on-retire: once the flag is up this feeder
                // stops pulling new batches and exits; everything
                // already handed to the engine still completes (the
                // scope below drains the lanes), so a retired worker is
                // never killed mid-batch.
                if retire.load(Ordering::Acquire) {
                    return;
                }
                // Holding the lock while blocked on recv is deliberate:
                // idle workers queue on the mutex instead of the
                // channel, and the lock is released the moment a batch
                // (or disconnect) arrives. The timeout only bounds how
                // long a *quiet* feeder goes between retire-flag
                // checks.
                let batch = match lock_unpoisoned(dispatch).recv_timeout(FEEDER_POLL) {
                    Ok(b) => b,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return, // aggregator gone, queue drained
                };
                metrics.record_dispatch_dequeued();
                debug_assert!(!batch.entries.is_empty() && batch.entries.len() <= k);
                let dispatched_at = Instant::now();
                // Assemble [K, sample...]: real rows first, all-zero
                // padding after. Per-sample quantization scales make the
                // padding numerically invisible to the real rows.
                let mut shape = vec![k];
                shape.extend_from_slice(batch.entries[0].input.shape());
                // Reuse a recycled batch tensor when one matches; the
                // padding rows are re-zeroed below, so stale contents
                // are numerically invisible (identical to a fresh
                // zeroed tensor).
                let recycled = lock_unpoisoned(spare_ref).pop().filter(|t| t.shape() == shape);
                let mut x = recycled.unwrap_or_else(|| Tensor::<f32>::zeros(&shape));
                for (i, p) in batch.entries.iter().enumerate() {
                    x.batch_item_mut(i).copy_from_slice(p.input.as_slice());
                }
                for i in batch.entries.len()..k {
                    x.batch_item_mut(i).fill(0.0);
                }
                let fill = batch.fill();
                lock_unpoisoned(in_flight_ref).insert(
                    seq,
                    InFlight { entries: batch.entries, dispatched_at, fill },
                );
                if in_tx.send((seq, x)).is_err() {
                    return; // engine gone (plan extraction failed)
                }
                seq += 1;
            }
        });
        // Router: engine outcomes → per-request responses. The served
        // batch's input tensor goes back to the spare pool for the
        // feeder to refill.
        let in_flight_ref = &in_flight;
        let spare_ref = &spare_batches;
        scope.spawn(move || {
            for mut o in out_rx.iter() {
                let Some(InFlight { entries, dispatched_at, fill }) =
                    lock_unpoisoned(in_flight_ref).remove(&o.seq)
                else {
                    // An outcome for a batch nobody registered can only
                    // follow a feeder fault; the waiters (if any) see a
                    // dropped ticket, not a dead server.
                    continue;
                };
                if let Some(input) = o.input.take() {
                    lock_unpoisoned(spare_ref).push(input);
                }
                route_batch(o, entries, dispatched_at, fill, integrity, metrics);
            }
        });
        // The engine's TEE lanes run on this thread's scope; returns
        // when the feeder closes the input (server drained).
        if engine.pump_inference(&model, true, in_rx, out_tx).is_err() {
            // Weight quantization failed at plan extraction: senders
            // are dropped, the feeder and router unwind, and waiting
            // tickets observe the worker as gone.
        }
    });
}

/// Turns one engine outcome into per-request responses, dropping padded
/// rows (only real requests receive responses).
fn route_batch(
    outcome: InferenceOutcome,
    entries: Vec<Pending>,
    dispatched_at: Instant,
    fill: f64,
    integrity: bool,
    metrics: &MetricsRecorder,
) {
    // Measured from the dispatch-queue pull, not from lane pickup
    // (`outcome.service`): time spent waiting in the engine's bounded
    // input channel is real latency the client observes, and
    // queue_wait + service_time must cover the whole journey.
    let service_time = dispatched_at.elapsed();
    if !outcome.quarantined.is_empty() {
        metrics.record_quarantined(outcome.quarantined.len());
    }
    match outcome.output {
        Ok(y) => {
            let row_shape = y.shape()[1..].to_vec();
            // A successful decode that needed TEE-side repair is still
            // evidence of active tampering: surface it as `Repaired`,
            // never as a clean `Verified`.
            let verdict = if outcome.repaired {
                metrics.record_repaired_rows(entries.len());
                IntegrityVerdict::Repaired
            } else if integrity {
                IntegrityVerdict::Verified
            } else {
                IntegrityVerdict::Unchecked
            };
            for (i, p) in entries.into_iter().enumerate() {
                let queue_wait = dispatched_at.duration_since(p.enqueued);
                metrics.record_response(queue_wait, true, outcome.repaired);
                let _ = p.reply.send(Response {
                    id: p.id,
                    output: Ok(Tensor::from_vec(&row_shape, y.batch_item(i).to_vec())),
                    verdict,
                    queue_wait,
                    service_time,
                    batch_fill: fill,
                });
            }
        }
        Err(e) => {
            metrics.record_fault(&e);
            let verdict = match &e {
                DarknightError::IntegrityViolation { .. } => IntegrityVerdict::Violated,
                _ => IntegrityVerdict::Unchecked,
            };
            for p in entries {
                let queue_wait = dispatched_at.duration_since(p.enqueued);
                metrics.record_response(queue_wait, false, false);
                let _ = p.reply.send(Response {
                    id: p.id,
                    output: Err(e.clone()),
                    verdict,
                    queue_wait,
                    service_time,
                    batch_fill: fill,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use dk_core::QuantizedReference;
    use dk_field::QuantConfig;
    use dk_gpu::Behavior;
    use dk_nn::arch::mini_vgg;

    const HW: usize = 8;

    fn sample(seed: u64) -> Tensor<f32> {
        Tensor::from_fn(&[3, HW, HW], |i| {
            (((i as u64).wrapping_mul(seed * 2 + 1) % 23) as f32 - 11.0) * 0.04
        })
    }

    fn server(workers: usize, wait: Duration) -> (Server, Sequential, DarknightConfig) {
        let model = mini_vgg(HW, 4, 77);
        let cfg = DarknightConfig::new(4, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 7);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW]).with_workers(workers).with_max_batch_wait(wait),
            &model,
            &cluster,
        )
        .unwrap();
        (server, model, cfg)
    }

    fn solo_reference(model: &Sequential, x: &Tensor<f32>, quant: QuantConfig) -> Tensor<f32> {
        QuantizedReference::forward_solo(model, x, quant).unwrap()
    }

    #[test]
    fn full_batches_serve_exactly() {
        let (server, model, cfg) = server(2, Duration::from_millis(50));
        let handle = server.handle();
        let tickets: Vec<(Tensor<f32>, Ticket)> = (0..8)
            .map(|i| {
                let x = sample(i);
                let t = handle.submit(InferenceRequest::new(x.clone())).unwrap();
                (x, t)
            })
            .collect();
        for (x, t) in tickets {
            let resp = t.wait().expect("server alive");
            assert_eq!(resp.verdict, IntegrityVerdict::Verified);
            let y = resp.output.expect("served");
            assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        }
        let m = server.shutdown();
        assert_eq!(m.served, 8);
        assert_eq!(m.failed, 0);
        assert_eq!(m.shed, 0);
        assert_eq!(m.real_rows, 8);
    }

    /// The padding satellite: a partial batch is padded with zero rows,
    /// the padded rows are dropped before routing, and the real
    /// response is still bit-exact.
    #[test]
    fn partial_batch_pads_and_drops_padding() {
        let (server, model, cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        let x = sample(3);
        let ticket = handle.submit(InferenceRequest::new(x.clone())).unwrap();
        let resp = ticket.wait().expect("server alive");
        assert!((resp.batch_fill - 0.25).abs() < 1e-12, "1 of K=4 rows is real");
        let y = resp.output.expect("served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.served, 1, "exactly one response for one request");
        assert_eq!(m.batches, 1);
        assert_eq!(m.real_rows, 1);
        assert_eq!(m.padded_rows, 3, "K-1 rows were padding");
        assert!((m.batch_fill_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_zero_request_is_served() {
        // A legitimate all-zero input must be indistinguishable from
        // padding handling-wise: it still gets its own response.
        let (server, model, cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        let x = Tensor::<f32>::zeros(&[3, HW, HW]);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        let y = resp.output.expect("served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let (server, _model, _cfg) = server(2, Duration::from_secs(10));
        let handle = server.handle();
        // With a 10 s deadline and only 3 of K=4 requests, dispatch can
        // only come from the shutdown drain.
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| handle.submit(InferenceRequest::new(sample(i))).unwrap())
            .collect();
        let m = server.shutdown();
        assert_eq!(m.served, 3);
        for t in tickets {
            assert!(t.try_wait().is_some(), "drained response must be waiting");
        }
    }

    /// Regression: a backpressured aggregator must not siphon the
    /// (refilling) bounded ingress into an unbounded backlog — it
    /// absorbs only up to the cap and leaves the rest in the channel,
    /// which is what lets `submit` shed under sustained overload.
    #[test]
    fn absorb_respects_the_backlog_cap() {
        let (tx, rx) = mpsc::sync_channel::<Ingress>(16);
        let mut agg = BatchAggregator::new(4);
        for i in 0..10u64 {
            let (reply, _rx) = mpsc::channel();
            let now = Instant::now();
            tx.try_send(Ingress::Request(Pending {
                id: RequestId(i),
                input: Tensor::zeros(&[2]),
                priority: Priority::Normal,
                seq: 0,
                enqueued: now,
                deadline: now + Duration::from_secs(1),
                reply,
            }))
            .unwrap();
        }
        let metrics = MetricsRecorder::new();
        assert!(absorb_available(&rx, &mut agg, 6, &metrics), "no stop signal yet");
        assert_eq!(agg.len(), 6, "absorption stops at the cap");
        // The rest is still queued in the channel, not hoarded.
        assert_eq!(rx.try_iter().count(), 4);
        // A stop signal is reported once the backlog has room again.
        tx.try_send(Ingress::Stop).unwrap();
        assert!(!absorb_available(&rx, &mut agg, 12, &metrics));
    }

    /// Regression: a poisoned (non-finite) input must be refused at
    /// admission — admitted, it would abort quantization for the whole
    /// virtual batch and fail its innocent batch-mates.
    #[test]
    fn non_finite_input_is_refused_and_cannot_poison_batch_mates() {
        let (server, model, cfg) = server(1, Duration::from_millis(5));
        let handle = server.handle();
        let mut poison = sample(0);
        poison.as_mut_slice()[7] = f32::NAN;
        let shed = handle.submit(InferenceRequest::new(poison)).unwrap_err();
        assert_eq!(shed.reason, ShedReason::NonFiniteInput);
        // An innocent request submitted around it is served normally.
        let x = sample(1);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        let y = resp.output.expect("innocent request must not fail");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.shed, 1);
        assert_eq!(m.served, 1);
        assert_eq!(m.failed, 0);
    }

    #[test]
    fn submit_after_shutdown_sheds() {
        let (server, _model, _cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        server.shutdown();
        let shed = handle.submit(InferenceRequest::new(sample(1))).unwrap_err();
        assert_eq!(shed.reason, ShedReason::ShuttingDown);
        assert_eq!(shed.request.input().shape(), &[3, HW, HW], "request handed back intact");
    }

    #[test]
    fn overload_sheds_instead_of_queueing() {
        let model = mini_vgg(HW, 4, 78);
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 8);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_queue_capacity(2)
                .with_dispatch_depth(1)
                .with_max_batch_wait(Duration::from_secs(10)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let mut shed = 0;
        let mut tickets = Vec::new();
        // Far more submissions than the 2-deep ingress can absorb while
        // the single worker grinds: some must shed.
        for i in 0..64 {
            match handle.submit(InferenceRequest::new(sample(i))) {
                Ok(t) => tickets.push(t),
                Err(s) => {
                    assert_eq!(s.reason, ShedReason::QueueFull);
                    shed += 1;
                }
            }
        }
        assert!(shed > 0, "bounded ingress must shed under overload");
        let m = server.shutdown();
        assert_eq!(m.shed, shed);
        assert_eq!(m.served as usize, tickets.len(), "admitted requests all served");
        for t in tickets {
            assert!(t.try_wait().is_some());
        }
    }

    #[test]
    fn priority_rides_earlier_batches() {
        // One slow worker, K=2, 1-deep dispatch: flood Low requests,
        // then one High; the High request must overtake the tail.
        let model = mini_vgg(HW, 4, 79);
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 9);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_queue_capacity(32)
                .with_dispatch_depth(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let lows: Vec<Ticket> = (0..12)
            .map(|i| {
                handle
                    .submit(InferenceRequest::new(sample(i)).with_priority(Priority::Low))
                    .unwrap()
            })
            .collect();
        let high = handle
            .submit(InferenceRequest::new(sample(99)).with_priority(Priority::High))
            .unwrap();
        let high_id = high.id();
        let m = server.shutdown();
        assert_eq!(m.served, 13);
        let high_wait = high.wait().unwrap().queue_wait;
        let last_low_wait =
            lows.into_iter().map(|t| t.wait().unwrap().queue_wait).max().unwrap();
        assert!(
            high_wait <= last_low_wait,
            "high-priority {high_id} waited {high_wait:?}, longer than the slowest low \
             ({last_low_wait:?})"
        );
    }

    #[test]
    fn integrity_violation_routes_error_verdicts() {
        let model = mini_vgg(HW, 4, 80);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[1] = Behavior::SingleElement;
        let cluster = GpuCluster::with_behaviors(&behaviors, 10);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let resp =
            handle.submit(InferenceRequest::new(sample(5))).unwrap().wait().expect("alive");
        assert_eq!(resp.verdict, IntegrityVerdict::Violated);
        assert!(matches!(
            resp.output,
            Err(DarknightError::IntegrityViolation { phase: "forward", .. })
        ));
        let m = server.shutdown();
        assert_eq!(m.failed, 1);
        assert_eq!(m.served, 0);
    }

    #[test]
    fn recovery_mode_serves_through_tampering() {
        let model = mini_vgg(HW, 4, 81);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[0] = Behavior::AdditiveNoise;
        let cluster = GpuCluster::with_behaviors(&behaviors, 11);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let x = sample(6);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        assert_eq!(
            resp.verdict,
            IntegrityVerdict::Repaired,
            "a repaired batch must not masquerade as cleanly Verified"
        );
        let y = resp.output.expect("repaired and served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.repaired, 1);
        assert_eq!(m.served, 1);
    }

    #[test]
    fn dead_worker_mid_batch_serves_repaired_not_dead() {
        // A fail-stop worker (dies on its very first job) must behave
        // exactly like a tampering one under recovery: the batch is
        // repaired by the TEE, the verdict says so, the answer is
        // bit-exact — and the server survives to shut down cleanly.
        let model = mini_vgg(HW, 4, 83);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[2] = Behavior::Crash { after: 0 };
        let cluster = GpuCluster::with_behaviors(&behaviors, 13);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let x = sample(7);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        assert_eq!(resp.verdict, IntegrityVerdict::Repaired, "worker loss must be visible");
        let y = resp.output.expect("repaired and served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.repaired, 1);
        assert_eq!(m.served, 1);
    }

    #[test]
    fn dead_worker_without_recovery_sheds_the_batch_not_the_server() {
        // Fail closed: no recovery → typed GpuFault responses for the
        // affected batch, and the *next* batches still get served (the
        // worker loop and dispatch queue survive).
        let model = mini_vgg(HW, 4, 84);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[1] = Behavior::Crash { after: 0 };
        let cluster = GpuCluster::with_behaviors(&behaviors, 14);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let resp =
            handle.submit(InferenceRequest::new(sample(8))).unwrap().wait().expect("alive");
        assert!(
            matches!(resp.output, Err(DarknightError::GpuFault { phase: "forward", .. })),
            "{:?}",
            resp.output
        );
        let m = server.shutdown();
        assert_eq!(m.failed, 1);
        assert_eq!(m.served, 0);
    }

    #[test]
    fn insufficient_cluster_fails_fast() {
        let model = mini_vgg(HW, 4, 82);
        let cfg = DarknightConfig::new(4, 2).with_integrity(true); // needs 7
        let cluster = GpuCluster::honest(5, 12);
        assert!(matches!(
            Server::start(ServerConfig::new(cfg, &[3, HW, HW]), &model, &cluster),
            Err(ServeError::Session(DarknightError::InsufficientWorkers {
                required: 7,
                available: 5
            }))
        ));
    }

    #[test]
    fn zero_bounds_are_typed_errors_not_panics() {
        let model = mini_vgg(HW, 4, 85);
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 15);
        let base = || ServerConfig::new(cfg, &[3, HW, HW]);
        for (config, want) in [
            (base().with_workers(0), ConfigError::ZeroWorkers),
            (base().with_queue_capacity(0), ConfigError::ZeroQueueCapacity),
            (base().with_dispatch_depth(0), ConfigError::ZeroDispatchDepth),
            (base().with_pipeline_lanes(0), ConfigError::ZeroPipelineLanes),
            (
                base().with_autoscale(AutoscaleConfig::new(0, 2)),
                ConfigError::AutoscaleRange { min: 0, max: 2 },
            ),
            (
                base().with_autoscale(AutoscaleConfig::new(3, 2)),
                ConfigError::AutoscaleRange { min: 3, max: 2 },
            ),
        ] {
            match Server::start(config, &model, &cluster) {
                Err(ServeError::Config(e)) => assert_eq!(e, want),
                other => panic!("expected {want:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn manual_resize_scales_up_and_down_and_keeps_serving_exactly() {
        let (server, model, cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        assert_eq!(server.pool_workers(), 1);
        assert_eq!(server.resize_pool(3).unwrap(), 3);
        assert_eq!(server.metrics().pool_workers, 3);
        for i in 0..6 {
            let x = sample(i + 40);
            let resp =
                handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
            let y = resp.output.expect("served");
            assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        }
        // Scale back down; the retired workers drain and responses stay
        // exact.
        assert_eq!(server.resize_pool(1).unwrap(), 1);
        for i in 0..4 {
            let x = sample(i + 60);
            let resp =
                handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
            let y = resp.output.expect("served");
            assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        }
        let m = server.shutdown();
        assert_eq!(m.served, 10);
        assert_eq!(m.failed, 0);
    }

    #[test]
    fn autoscaler_grows_under_pressure_and_shrinks_when_calm() {
        use dk_gpu::LatencyModel;
        let model = mini_vgg(HW, 4, 86);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        // Modeled per-job latency makes the single initial worker
        // visibly too slow for the burst, so queue pressure builds.
        let cluster = GpuCluster::honest(cfg.workers_required(), 16)
            .with_latency(Some(LatencyModel { base_ns: 300_000, ns_per_kmac: 0 }));
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_queue_capacity(64)
                .with_dispatch_depth(1)
                .with_max_batch_wait(Duration::from_millis(1))
                .with_autoscale(
                    AutoscaleConfig::new(1, 3)
                        .with_interval(Duration::from_millis(5))
                        .with_idle_ticks(2),
                ),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let mut tickets = Vec::new();
        for i in 0..48 {
            if let Ok(t) = handle.submit(InferenceRequest::new(sample(i))) {
                tickets.push(t);
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        // Calm traffic now: give the controller a few idle ticks to
        // walk back down to min.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.pool_workers() > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let m = server.shutdown();
        // scale_ups counts every spawn, including the initial worker —
        // controller-driven growth means strictly more than 1.
        assert!(m.scale_ups > 1, "burst must have grown the pool: {m:?}");
        assert!(m.scale_downs > 0, "calm must have shrunk the pool: {m:?}");
        assert_eq!(m.pool_workers, 0, "shutdown empties the pool gauge");
    }

    #[test]
    #[should_panic(expected = "sample shape")]
    fn wrong_sample_shape_panics() {
        let (server, _model, _cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        let _ = handle.submit(InferenceRequest::new(Tensor::zeros(&[3, HW + 2, HW])));
    }
}
