//! The serving runtime: admission → aggregation → pipelined engine pool
//! → response routing.
//!
//! Thread topology (all std, matching the workspace's no-crossbeam
//! convention):
//!
//! ```text
//! callers ──try_send──▶ ingress (bounded: admission control)
//!                          │ recv / recv_timeout(next deadline)
//!                      aggregator thread  [BatchAggregator]
//!                          │ send (bounded: dispatch backpressure)
//!                      dispatch queue
//!                          │ shared Mutex<Receiver> (work stealing)
//!            ┌─────────────┼─────────────┐
//!        worker 0      worker 1  …   worker N-1
//!        (each: feeder ▶ PipelineEngine lanes ▶ router)
//!            │               │             │
//!            └── per-request mpsc Sender ──┴──▶ Ticket::wait
//! ```
//!
//! Every pool worker owns a [`dk_core::PipelineEngine`] over a
//! [`GpuCluster::fork`] of one shared fleet: a feeder thread pulls
//! batches off the shared dispatch queue into the engine's input stream,
//! `pipeline_lanes` TEE lane threads serve them concurrently over the
//! engine's persistent GPU worker threads — so the TEE encodes batch
//! `t+1` while the fleet computes batch `t` (§7.1) — and a router
//! thread sends per-request responses back in completion order.
//! Responses are bit-for-bit unchanged from the sequential path (the
//! engine's determinism guarantee) — per-sample quantization scales make
//! every answer identical to running that request alone.
//!
//! Backpressure is a chain: slow engines fill the dispatch queue, a
//! full dispatch queue blocks the aggregator, a blocked aggregator
//! stops absorbing once its own backlog reaches the cap (it never
//! hoards more than `max(K, queue_capacity)` pending requests), and
//! the bounded ingress then fills — at which point `submit` sheds
//! instead of queueing unboundedly (the overload policy). Outstanding
//! admitted work is therefore bounded end to end (the engine's input
//! channel is bounded by its lane count).

use crate::aggregator::{Batch, BatchAggregator, Pending};
use crate::metrics::{MetricsRecorder, ServerMetrics};
use crate::request::{
    InferenceRequest, IntegrityVerdict, RequestId, Response, Shed, ShedReason, Ticket,
};
use dk_core::engine::InferenceOutcome;
use dk_core::{DarknightConfig, DarknightError, EngineOptions, PipelineEngine};
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::Sequential;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deployment parameters for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-worker session parameters; `session.k()` is the virtual
    /// batch size requests are aggregated into.
    pub session: DarknightConfig,
    /// Shape of one request sample (no batch dimension).
    pub sample_shape: Vec<usize>,
    /// Session threads in the pool.
    pub workers: usize,
    /// Bounded ingress queue length; when full, `submit` sheds.
    pub queue_capacity: usize,
    /// Default cap on how long a request may wait for its batch to
    /// fill before a padded partial batch dispatches.
    pub max_batch_wait: Duration,
    /// Bounded dispatch queue length between aggregator and pool.
    pub dispatch_depth: usize,
    /// In-flight virtual batches per worker engine (TEE lane threads);
    /// 1 disables overlap.
    pub pipeline_lanes: usize,
}

impl ServerConfig {
    /// A 2-worker pool with a 64-deep ingress queue and a 2 ms
    /// aggregation deadline.
    pub fn new(session: DarknightConfig, sample_shape: &[usize]) -> Self {
        Self {
            session,
            sample_shape: sample_shape.to_vec(),
            workers: 2,
            queue_capacity: 64,
            max_batch_wait: Duration::from_millis(2),
            dispatch_depth: 2,
            pipeline_lanes: 2,
        }
    }

    /// Sets the pool size.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a server needs at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the ingress queue bound (admission control).
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity == 0`.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        assert!(queue_capacity > 0, "ingress queue needs capacity");
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the default aggregation deadline.
    pub fn with_max_batch_wait(mut self, max_batch_wait: Duration) -> Self {
        self.max_batch_wait = max_batch_wait;
        self
    }

    /// Sets the dispatch queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `dispatch_depth == 0`.
    pub fn with_dispatch_depth(mut self, dispatch_depth: usize) -> Self {
        assert!(dispatch_depth > 0, "dispatch queue needs capacity");
        self.dispatch_depth = dispatch_depth;
        self
    }

    /// Sets the per-worker pipeline lane count (in-flight virtual
    /// batches; 1 disables stage overlap).
    ///
    /// # Panics
    ///
    /// Panics if `pipeline_lanes == 0`.
    pub fn with_pipeline_lanes(mut self, pipeline_lanes: usize) -> Self {
        assert!(pipeline_lanes > 0, "an engine needs at least one lane");
        self.pipeline_lanes = pipeline_lanes;
        self
    }
}

/// What flows through the ingress channel: requests, or the single
/// stop signal [`Server::shutdown`] injects.
enum Ingress {
    Request(Pending),
    Stop,
}

/// A caller-side handle: cheap to clone, shareable across client
/// threads. All clones feed the same server.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    ingress: mpsc::SyncSender<Ingress>,
    next_id: Arc<AtomicU64>,
    metrics: Arc<MetricsRecorder>,
    sample_shape: Vec<usize>,
    max_batch_wait: Duration,
}

impl ServerHandle {
    /// Submits a request. On acceptance returns a [`Ticket`] that
    /// blocks until the response is routed back; on overload (ingress
    /// queue full) or after shutdown the request is handed back in a
    /// [`Shed`].
    ///
    /// # Panics
    ///
    /// Panics if the request's input shape differs from the server's
    /// configured `sample_shape` (a caller bug, not an overload
    /// condition).
    pub fn submit(&self, request: InferenceRequest) -> Result<Ticket, Shed> {
        assert_eq!(
            request.input.shape(),
            &self.sample_shape[..],
            "request sample shape does not match the server's model input"
        );
        // Reject non-finite inputs here, where only the offending
        // caller pays: admitted into a batch, a single NaN row would
        // abort quantization for the whole virtual batch and fail its
        // innocent batch-mates.
        if !request.input.as_slice().iter().all(|v| v.is_finite()) {
            self.metrics.record_shed();
            return Err(Shed { reason: ShedReason::NonFiniteInput, request });
        }
        let max_wait = request.max_wait;
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (reply_tx, reply_rx) = mpsc::channel();
        let now = Instant::now();
        // Clamp to a day so a huge caller-supplied max_wait (e.g.
        // Duration::MAX as "no deadline") cannot overflow Instant
        // arithmetic; a day already means "effectively never" here.
        let wait = max_wait.unwrap_or(self.max_batch_wait).min(Duration::from_secs(86_400));
        let pending = Pending {
            id,
            input: request.input,
            priority: request.priority,
            seq: 0, // assigned by the aggregator
            enqueued: now,
            deadline: now + wait,
            reply: reply_tx,
        };
        match self.ingress.try_send(Ingress::Request(pending)) {
            Ok(()) => {
                self.metrics.record_submitted();
                Ok(Ticket { id, rx: reply_rx })
            }
            Err(e) => {
                let (reason, msg) = match e {
                    TrySendError::Full(m) => (ShedReason::QueueFull, m),
                    TrySendError::Disconnected(m) => (ShedReason::ShuttingDown, m),
                };
                let Ingress::Request(p) = msg else { unreachable!("submit only sends requests") };
                self.metrics.record_shed();
                Err(Shed {
                    reason,
                    request: InferenceRequest { input: p.input, priority: p.priority, max_wait },
                })
            }
        }
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics.snapshot()
    }

    /// Prometheus text exposition of the server's metrics — the
    /// `/metrics` endpoint body for whatever transport fronts this
    /// server.
    pub fn render_metrics(&self) -> String {
        self.metrics.render_prometheus()
    }

    /// The server's metrics as a flat JSON document.
    pub fn render_metrics_json(&self) -> String {
        self.metrics.render_json()
    }
}

/// A running serving deployment (see module docs for the topology).
///
/// Dropping a `Server` without calling [`Server::shutdown`] detaches
/// its threads; they keep serving outstanding [`ServerHandle`] clones
/// and exit when the last one is dropped.
#[derive(Debug)]
pub struct Server {
    /// The prototype handle all caller handles are cloned from.
    handle: ServerHandle,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the pool and starts serving.
    ///
    /// Every worker gets its own [`PipelineEngine`] over a
    /// [`GpuCluster::fork`] of `cluster` (same fleet behaviours,
    /// independent execution state) and its own clone of `model`, with
    /// per-worker session seeds so no two workers share a mask stream.
    /// Within each engine, `pipeline_lanes` TEE threads stream batches
    /// over persistent per-(simulated-)GPU dispatch threads.
    ///
    /// # Errors
    ///
    /// [`DarknightError::InsufficientWorkers`] if `cluster` is smaller
    /// than the session configuration requires.
    pub fn start(
        config: ServerConfig,
        model: &Sequential,
        cluster: &GpuCluster,
    ) -> Result<Self, DarknightError> {
        let k = config.session.k();
        // Fail fast on a model whose weights cannot survive Algorithm 1
        // quantization: the engines extract this exact plan inside
        // their workers, and a worker dying there would silently strand
        // every request routed to it.
        let _ = dk_core::StepPlan::extract(model, config.session.quant())?;
        // Construct every engine before spawning anything, so a bad
        // configuration fails fast with no threads to clean up.
        let opts = EngineOptions::default().with_lanes(config.pipeline_lanes);
        let mut engines = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let seed = config.session.seed() ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let session_cfg = config.session.with_seed(seed);
            engines.push(PipelineEngine::new(session_cfg, cluster.fork(seed ^ 0x5EED), opts)?);
        }

        let metrics = Arc::new(MetricsRecorder::new());
        let (ingress_tx, ingress_rx) = mpsc::sync_channel::<Ingress>(config.queue_capacity);
        let (dispatch_tx, dispatch_rx) = mpsc::sync_channel::<Batch>(config.dispatch_depth);
        let dispatch_rx = Arc::new(Mutex::new(dispatch_rx));
        let mut threads = Vec::with_capacity(config.workers + 1);

        {
            let metrics = metrics.clone();
            let backlog_cap = config.queue_capacity.max(k);
            threads.push(
                std::thread::Builder::new()
                    .name("dk-serve-aggregator".into())
                    .spawn(move || {
                        aggregate_loop(k, backlog_cap, &ingress_rx, &dispatch_tx, &metrics)
                    })
                    .expect("spawn aggregator thread"),
            );
        }
        for (w, engine) in engines.into_iter().enumerate() {
            let rx = dispatch_rx.clone();
            let metrics = metrics.clone();
            let model = model.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dk-serve-worker-{w}"))
                    .spawn(move || worker_loop(engine, model, &rx, &metrics))
                    .expect("spawn worker thread"),
            );
        }

        Ok(Self {
            handle: ServerHandle {
                ingress: ingress_tx,
                next_id: Arc::new(AtomicU64::new(0)),
                metrics,
                sample_shape: config.sample_shape,
                max_batch_wait: config.max_batch_wait,
            },
            threads,
        })
    }

    /// A new caller handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        self.handle.metrics()
    }

    /// Stops the server: every request admitted before this call is
    /// still served (partial batches dispatch padded), the pool is
    /// joined, and the final metrics are returned.
    ///
    /// Outstanding [`ServerHandle`] clones remain valid but their
    /// `submit` sheds with [`ShedReason::ShuttingDown`] once the stop
    /// signal is processed; a submission racing the stop signal may
    /// instead be accepted and dropped, in which case its
    /// [`Ticket::wait`] returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn shutdown(self) -> ServerMetrics {
        let Server { handle, threads } = self;
        // A blocking send: the stop signal queues behind admitted
        // requests, which is exactly the drain order we want. The
        // server's own sender is dropped right after, ahead of the
        // joins.
        let _ = handle.ingress.send(Ingress::Stop);
        let ServerHandle { metrics, .. } = handle;
        for t in threads {
            // A worker that died mid-run already shed or dropped its
            // in-flight requests; the survivors' metrics still count.
            let _ = t.join();
        }
        metrics.snapshot()
    }
}

/// The aggregator thread: blocks on ingress (bounded by the earliest
/// pending deadline), drains greedily up to `backlog_cap`, dispatches
/// full batches on the hot path and padded partial batches on deadline
/// expiry.
fn aggregate_loop(
    k: usize,
    backlog_cap: usize,
    ingress: &mpsc::Receiver<Ingress>,
    dispatch: &mpsc::SyncSender<Batch>,
    metrics: &MetricsRecorder,
) {
    let mut agg = BatchAggregator::new(k);
    let mut open = true;
    while open {
        // Wait for the next event: a new request, or the earliest
        // deadline among pending requests.
        match agg.next_deadline() {
            None => match ingress.recv() {
                Ok(Ingress::Request(p)) => agg.add(p),
                Ok(Ingress::Stop) | Err(_) => open = false,
            },
            Some(d) => {
                let now = Instant::now();
                if d > now {
                    match ingress.recv_timeout(d - now) {
                        Ok(Ingress::Request(p)) => agg.add(p),
                        Ok(Ingress::Stop) | Err(RecvTimeoutError::Disconnected) => open = false,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                }
            }
        }
        open &= absorb_available(ingress, &mut agg, backlog_cap);
        // Hot path: dispatch full batches, re-absorbing arrivals after
        // every (possibly blocking) send so a high-priority request can
        // still overtake batches that have not boarded yet.
        while let Some(batch) = agg.take_full(Instant::now()) {
            if send_batch(dispatch, batch, metrics).is_err() {
                return;
            }
            open &= absorb_available(ingress, &mut agg, backlog_cap);
        }
        // Deadline path: the oldest pending request is due — dispatch
        // partially filled (the worker pads).
        while let Some(batch) = agg.flush_due(Instant::now()) {
            if send_batch(dispatch, batch, metrics).is_err() {
                return;
            }
            open &= absorb_available(ingress, &mut agg, backlog_cap);
        }
    }
    // Shutdown drain: every admitted request still gets served.
    while let Some(batch) = agg.drain() {
        if send_batch(dispatch, batch, metrics).is_err() {
            return;
        }
    }
}

/// Non-blocking drain of what is already in the ingress queue, so
/// bursts form full batches instead of trickling one recv at a time —
/// but never beyond `backlog_cap` pending requests. The cap is what
/// makes admission control real: without it, a backpressured
/// aggregator would keep siphoning the (refilling) bounded ingress
/// into an unbounded backlog, and `submit` would never shed. Requests
/// left in the channel simply wait; a full channel sheds at `submit`.
/// Returns `false` if the stop signal was absorbed.
fn absorb_available(
    ingress: &mpsc::Receiver<Ingress>,
    agg: &mut BatchAggregator,
    backlog_cap: usize,
) -> bool {
    while agg.len() < backlog_cap {
        match ingress.try_recv() {
            Ok(Ingress::Request(p)) => agg.add(p),
            Ok(Ingress::Stop) => return false,
            Err(_) => break,
        }
    }
    true
}

/// Locks a mutex, recovering the value if a previous holder panicked.
/// Everything behind these locks is mutated through single push / pop /
/// insert / remove calls (no multi-step invariants), so the data is
/// consistent even after a panicking holder — the poison flag alone must
/// not take down the rest of the server with the one dead thread.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn send_batch(
    dispatch: &mpsc::SyncSender<Batch>,
    batch: Batch,
    metrics: &MetricsRecorder,
) -> Result<(), ()> {
    metrics.record_batch(batch.entries.len(), batch.padded_rows());
    // A send error means every worker died (panic); the entries'
    // reply senders are dropped with the batch and callers observe the
    // server as gone.
    dispatch.send(batch).map_err(|_| ())
}

/// Per-batch metadata the router needs to turn an engine outcome back
/// into per-request responses.
struct InFlight {
    entries: Vec<Pending>,
    dispatched_at: Instant,
    fill: f64,
}

/// One pool worker: a feeder thread pulls batches off the shared
/// dispatch queue into its [`PipelineEngine`]'s input stream, the
/// engine's TEE lanes serve them concurrently (encode of batch `t+1`
/// under the shadow of GPU work for batch `t`), and a router thread
/// sends per-request responses in completion order.
fn worker_loop(
    mut engine: PipelineEngine,
    model: Sequential,
    dispatch: &Mutex<mpsc::Receiver<Batch>>,
    metrics: &MetricsRecorder,
) {
    let k = engine.config().k();
    let integrity = engine.config().integrity();
    let lanes = engine.options().lanes;
    let (in_tx, in_rx) = mpsc::sync_channel::<(u64, Tensor<f32>)>(lanes);
    let (out_tx, out_rx) = mpsc::channel::<InferenceOutcome>();
    let in_flight: Mutex<HashMap<u64, InFlight>> = Mutex::new(HashMap::new());
    // Recycled batch tensors: the router pushes each served batch's
    // input buffer here and the feeder reuses it for the next batch
    // (padding rows re-zeroed), so steady-state serving assembles
    // batches without allocating. Bounded by the in-flight batch count.
    let spare_batches: Mutex<Vec<Tensor<f32>>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        // Feeder: dispatch queue → engine input. The bounded engine
        // input keeps the backpressure chain intact: full lanes block
        // the feeder, which leaves batches in the dispatch queue.
        let in_flight_ref = &in_flight;
        let spare_ref = &spare_batches;
        scope.spawn(move || {
            let mut seq = 0u64;
            loop {
                // Holding the lock while blocked on recv is deliberate:
                // idle workers queue on the mutex instead of the
                // channel, and the lock is released the moment a batch
                // (or disconnect) arrives.
                let batch = match lock_unpoisoned(dispatch).recv() {
                    Ok(b) => b,
                    Err(_) => return, // aggregator gone and queue drained
                };
                debug_assert!(!batch.entries.is_empty() && batch.entries.len() <= k);
                let dispatched_at = Instant::now();
                // Assemble [K, sample...]: real rows first, all-zero
                // padding after. Per-sample quantization scales make the
                // padding numerically invisible to the real rows.
                let mut shape = vec![k];
                shape.extend_from_slice(batch.entries[0].input.shape());
                // Reuse a recycled batch tensor when one matches; the
                // padding rows are re-zeroed below, so stale contents
                // are numerically invisible (identical to a fresh
                // zeroed tensor).
                let recycled = lock_unpoisoned(spare_ref).pop().filter(|t| t.shape() == shape);
                let mut x = recycled.unwrap_or_else(|| Tensor::<f32>::zeros(&shape));
                for (i, p) in batch.entries.iter().enumerate() {
                    x.batch_item_mut(i).copy_from_slice(p.input.as_slice());
                }
                for i in batch.entries.len()..k {
                    x.batch_item_mut(i).fill(0.0);
                }
                let fill = batch.fill();
                lock_unpoisoned(in_flight_ref).insert(
                    seq,
                    InFlight { entries: batch.entries, dispatched_at, fill },
                );
                if in_tx.send((seq, x)).is_err() {
                    return; // engine gone (plan extraction failed)
                }
                seq += 1;
            }
        });
        // Router: engine outcomes → per-request responses. The served
        // batch's input tensor goes back to the spare pool for the
        // feeder to refill.
        let in_flight_ref = &in_flight;
        let spare_ref = &spare_batches;
        scope.spawn(move || {
            for mut o in out_rx.iter() {
                let Some(InFlight { entries, dispatched_at, fill }) =
                    lock_unpoisoned(in_flight_ref).remove(&o.seq)
                else {
                    // An outcome for a batch nobody registered can only
                    // follow a feeder fault; the waiters (if any) see a
                    // dropped ticket, not a dead server.
                    continue;
                };
                if let Some(input) = o.input.take() {
                    lock_unpoisoned(spare_ref).push(input);
                }
                route_batch(o, entries, dispatched_at, fill, integrity, metrics);
            }
        });
        // The engine's TEE lanes run on this thread's scope; returns
        // when the feeder closes the input (server drained).
        if engine.pump_inference(&model, true, in_rx, out_tx).is_err() {
            // Weight quantization failed at plan extraction: senders
            // are dropped, the feeder and router unwind, and waiting
            // tickets observe the worker as gone.
        }
    });
}

/// Turns one engine outcome into per-request responses, dropping padded
/// rows (only real requests receive responses).
fn route_batch(
    outcome: InferenceOutcome,
    entries: Vec<Pending>,
    dispatched_at: Instant,
    fill: f64,
    integrity: bool,
    metrics: &MetricsRecorder,
) {
    // Measured from the dispatch-queue pull, not from lane pickup
    // (`outcome.service`): time spent waiting in the engine's bounded
    // input channel is real latency the client observes, and
    // queue_wait + service_time must cover the whole journey.
    let service_time = dispatched_at.elapsed();
    if !outcome.quarantined.is_empty() {
        metrics.record_quarantined(outcome.quarantined.len());
    }
    match outcome.output {
        Ok(y) => {
            let row_shape = y.shape()[1..].to_vec();
            // A successful decode that needed TEE-side repair is still
            // evidence of active tampering: surface it as `Repaired`,
            // never as a clean `Verified`.
            let verdict = if outcome.repaired {
                metrics.record_repaired_rows(entries.len());
                IntegrityVerdict::Repaired
            } else if integrity {
                IntegrityVerdict::Verified
            } else {
                IntegrityVerdict::Unchecked
            };
            for (i, p) in entries.into_iter().enumerate() {
                let queue_wait = dispatched_at.duration_since(p.enqueued);
                metrics.record_response(queue_wait, true, outcome.repaired);
                let _ = p.reply.send(Response {
                    id: p.id,
                    output: Ok(Tensor::from_vec(&row_shape, y.batch_item(i).to_vec())),
                    verdict,
                    queue_wait,
                    service_time,
                    batch_fill: fill,
                });
            }
        }
        Err(e) => {
            metrics.record_fault(&e);
            let verdict = match &e {
                DarknightError::IntegrityViolation { .. } => IntegrityVerdict::Violated,
                _ => IntegrityVerdict::Unchecked,
            };
            for p in entries {
                let queue_wait = dispatched_at.duration_since(p.enqueued);
                metrics.record_response(queue_wait, false, false);
                let _ = p.reply.send(Response {
                    id: p.id,
                    output: Err(e.clone()),
                    verdict,
                    queue_wait,
                    service_time,
                    batch_fill: fill,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use dk_core::QuantizedReference;
    use dk_field::QuantConfig;
    use dk_gpu::Behavior;
    use dk_nn::arch::mini_vgg;

    const HW: usize = 8;

    fn sample(seed: u64) -> Tensor<f32> {
        Tensor::from_fn(&[3, HW, HW], |i| {
            (((i as u64).wrapping_mul(seed * 2 + 1) % 23) as f32 - 11.0) * 0.04
        })
    }

    fn server(workers: usize, wait: Duration) -> (Server, Sequential, DarknightConfig) {
        let model = mini_vgg(HW, 4, 77);
        let cfg = DarknightConfig::new(4, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 7);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW]).with_workers(workers).with_max_batch_wait(wait),
            &model,
            &cluster,
        )
        .unwrap();
        (server, model, cfg)
    }

    fn solo_reference(model: &Sequential, x: &Tensor<f32>, quant: QuantConfig) -> Tensor<f32> {
        QuantizedReference::forward_solo(model, x, quant).unwrap()
    }

    #[test]
    fn full_batches_serve_exactly() {
        let (server, model, cfg) = server(2, Duration::from_millis(50));
        let handle = server.handle();
        let tickets: Vec<(Tensor<f32>, Ticket)> = (0..8)
            .map(|i| {
                let x = sample(i);
                let t = handle.submit(InferenceRequest::new(x.clone())).unwrap();
                (x, t)
            })
            .collect();
        for (x, t) in tickets {
            let resp = t.wait().expect("server alive");
            assert_eq!(resp.verdict, IntegrityVerdict::Verified);
            let y = resp.output.expect("served");
            assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        }
        let m = server.shutdown();
        assert_eq!(m.served, 8);
        assert_eq!(m.failed, 0);
        assert_eq!(m.shed, 0);
        assert_eq!(m.real_rows, 8);
    }

    /// The padding satellite: a partial batch is padded with zero rows,
    /// the padded rows are dropped before routing, and the real
    /// response is still bit-exact.
    #[test]
    fn partial_batch_pads_and_drops_padding() {
        let (server, model, cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        let x = sample(3);
        let ticket = handle.submit(InferenceRequest::new(x.clone())).unwrap();
        let resp = ticket.wait().expect("server alive");
        assert!((resp.batch_fill - 0.25).abs() < 1e-12, "1 of K=4 rows is real");
        let y = resp.output.expect("served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.served, 1, "exactly one response for one request");
        assert_eq!(m.batches, 1);
        assert_eq!(m.real_rows, 1);
        assert_eq!(m.padded_rows, 3, "K-1 rows were padding");
        assert!((m.batch_fill_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_zero_request_is_served() {
        // A legitimate all-zero input must be indistinguishable from
        // padding handling-wise: it still gets its own response.
        let (server, model, cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        let x = Tensor::<f32>::zeros(&[3, HW, HW]);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        let y = resp.output.expect("served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let (server, _model, _cfg) = server(2, Duration::from_secs(10));
        let handle = server.handle();
        // With a 10 s deadline and only 3 of K=4 requests, dispatch can
        // only come from the shutdown drain.
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| handle.submit(InferenceRequest::new(sample(i))).unwrap())
            .collect();
        let m = server.shutdown();
        assert_eq!(m.served, 3);
        for t in tickets {
            assert!(t.try_wait().is_some(), "drained response must be waiting");
        }
    }

    /// Regression: a backpressured aggregator must not siphon the
    /// (refilling) bounded ingress into an unbounded backlog — it
    /// absorbs only up to the cap and leaves the rest in the channel,
    /// which is what lets `submit` shed under sustained overload.
    #[test]
    fn absorb_respects_the_backlog_cap() {
        let (tx, rx) = mpsc::sync_channel::<Ingress>(16);
        let mut agg = BatchAggregator::new(4);
        for i in 0..10u64 {
            let (reply, _rx) = mpsc::channel();
            let now = Instant::now();
            tx.try_send(Ingress::Request(Pending {
                id: RequestId(i),
                input: Tensor::zeros(&[2]),
                priority: Priority::Normal,
                seq: 0,
                enqueued: now,
                deadline: now + Duration::from_secs(1),
                reply,
            }))
            .unwrap();
        }
        assert!(absorb_available(&rx, &mut agg, 6), "no stop signal yet");
        assert_eq!(agg.len(), 6, "absorption stops at the cap");
        // The rest is still queued in the channel, not hoarded.
        assert_eq!(rx.try_iter().count(), 4);
        // A stop signal is reported once the backlog has room again.
        tx.try_send(Ingress::Stop).unwrap();
        assert!(!absorb_available(&rx, &mut agg, 12));
    }

    /// Regression: a poisoned (non-finite) input must be refused at
    /// admission — admitted, it would abort quantization for the whole
    /// virtual batch and fail its innocent batch-mates.
    #[test]
    fn non_finite_input_is_refused_and_cannot_poison_batch_mates() {
        let (server, model, cfg) = server(1, Duration::from_millis(5));
        let handle = server.handle();
        let mut poison = sample(0);
        poison.as_mut_slice()[7] = f32::NAN;
        let shed = handle.submit(InferenceRequest::new(poison)).unwrap_err();
        assert_eq!(shed.reason, ShedReason::NonFiniteInput);
        // An innocent request submitted around it is served normally.
        let x = sample(1);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        let y = resp.output.expect("innocent request must not fail");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.shed, 1);
        assert_eq!(m.served, 1);
        assert_eq!(m.failed, 0);
    }

    #[test]
    fn submit_after_shutdown_sheds() {
        let (server, _model, _cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        server.shutdown();
        let shed = handle.submit(InferenceRequest::new(sample(1))).unwrap_err();
        assert_eq!(shed.reason, ShedReason::ShuttingDown);
        assert_eq!(shed.request.input().shape(), &[3, HW, HW], "request handed back intact");
    }

    #[test]
    fn overload_sheds_instead_of_queueing() {
        let model = mini_vgg(HW, 4, 78);
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 8);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_queue_capacity(2)
                .with_dispatch_depth(1)
                .with_max_batch_wait(Duration::from_secs(10)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let mut shed = 0;
        let mut tickets = Vec::new();
        // Far more submissions than the 2-deep ingress can absorb while
        // the single worker grinds: some must shed.
        for i in 0..64 {
            match handle.submit(InferenceRequest::new(sample(i))) {
                Ok(t) => tickets.push(t),
                Err(s) => {
                    assert_eq!(s.reason, ShedReason::QueueFull);
                    shed += 1;
                }
            }
        }
        assert!(shed > 0, "bounded ingress must shed under overload");
        let m = server.shutdown();
        assert_eq!(m.shed, shed);
        assert_eq!(m.served as usize, tickets.len(), "admitted requests all served");
        for t in tickets {
            assert!(t.try_wait().is_some());
        }
    }

    #[test]
    fn priority_rides_earlier_batches() {
        // One slow worker, K=2, 1-deep dispatch: flood Low requests,
        // then one High; the High request must overtake the tail.
        let model = mini_vgg(HW, 4, 79);
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 9);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_queue_capacity(32)
                .with_dispatch_depth(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let lows: Vec<Ticket> = (0..12)
            .map(|i| {
                handle
                    .submit(InferenceRequest::new(sample(i)).with_priority(Priority::Low))
                    .unwrap()
            })
            .collect();
        let high = handle
            .submit(InferenceRequest::new(sample(99)).with_priority(Priority::High))
            .unwrap();
        let high_id = high.id();
        let m = server.shutdown();
        assert_eq!(m.served, 13);
        let high_wait = high.wait().unwrap().queue_wait;
        let last_low_wait =
            lows.into_iter().map(|t| t.wait().unwrap().queue_wait).max().unwrap();
        assert!(
            high_wait <= last_low_wait,
            "high-priority {high_id} waited {high_wait:?}, longer than the slowest low \
             ({last_low_wait:?})"
        );
    }

    #[test]
    fn integrity_violation_routes_error_verdicts() {
        let model = mini_vgg(HW, 4, 80);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[1] = Behavior::SingleElement;
        let cluster = GpuCluster::with_behaviors(&behaviors, 10);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let resp =
            handle.submit(InferenceRequest::new(sample(5))).unwrap().wait().expect("alive");
        assert_eq!(resp.verdict, IntegrityVerdict::Violated);
        assert!(matches!(
            resp.output,
            Err(DarknightError::IntegrityViolation { phase: "forward", .. })
        ));
        let m = server.shutdown();
        assert_eq!(m.failed, 1);
        assert_eq!(m.served, 0);
    }

    #[test]
    fn recovery_mode_serves_through_tampering() {
        let model = mini_vgg(HW, 4, 81);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[0] = Behavior::AdditiveNoise;
        let cluster = GpuCluster::with_behaviors(&behaviors, 11);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let x = sample(6);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        assert_eq!(
            resp.verdict,
            IntegrityVerdict::Repaired,
            "a repaired batch must not masquerade as cleanly Verified"
        );
        let y = resp.output.expect("repaired and served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.repaired, 1);
        assert_eq!(m.served, 1);
    }

    #[test]
    fn dead_worker_mid_batch_serves_repaired_not_dead() {
        // A fail-stop worker (dies on its very first job) must behave
        // exactly like a tampering one under recovery: the batch is
        // repaired by the TEE, the verdict says so, the answer is
        // bit-exact — and the server survives to shut down cleanly.
        let model = mini_vgg(HW, 4, 83);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[2] = Behavior::Crash { after: 0 };
        let cluster = GpuCluster::with_behaviors(&behaviors, 13);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let x = sample(7);
        let resp = handle.submit(InferenceRequest::new(x.clone())).unwrap().wait().expect("alive");
        assert_eq!(resp.verdict, IntegrityVerdict::Repaired, "worker loss must be visible");
        let y = resp.output.expect("repaired and served");
        assert_eq!(y.as_slice(), solo_reference(&model, &x, cfg.quant()).as_slice());
        let m = server.shutdown();
        assert_eq!(m.repaired, 1);
        assert_eq!(m.served, 1);
    }

    #[test]
    fn dead_worker_without_recovery_sheds_the_batch_not_the_server() {
        // Fail closed: no recovery → typed GpuFault responses for the
        // affected batch, and the *next* batches still get served (the
        // worker loop and dispatch queue survive).
        let model = mini_vgg(HW, 4, 84);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[1] = Behavior::Crash { after: 0 };
        let cluster = GpuCluster::with_behaviors(&behaviors, 14);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1)),
            &model,
            &cluster,
        )
        .unwrap();
        let handle = server.handle();
        let resp =
            handle.submit(InferenceRequest::new(sample(8))).unwrap().wait().expect("alive");
        assert!(
            matches!(resp.output, Err(DarknightError::GpuFault { phase: "forward", .. })),
            "{:?}",
            resp.output
        );
        let m = server.shutdown();
        assert_eq!(m.failed, 1);
        assert_eq!(m.served, 0);
    }

    #[test]
    fn insufficient_cluster_fails_fast() {
        let model = mini_vgg(HW, 4, 82);
        let cfg = DarknightConfig::new(4, 2).with_integrity(true); // needs 7
        let cluster = GpuCluster::honest(5, 12);
        assert!(matches!(
            Server::start(ServerConfig::new(cfg, &[3, HW, HW]), &model, &cluster),
            Err(DarknightError::InsufficientWorkers { required: 7, available: 5 })
        ));
    }

    #[test]
    #[should_panic(expected = "sample shape")]
    fn wrong_sample_shape_panics() {
        let (server, _model, _cfg) = server(1, Duration::from_millis(1));
        let handle = server.handle();
        let _ = handle.submit(InferenceRequest::new(Tensor::zeros(&[3, HW + 2, HW])));
    }
}
