//! Ring-buffer and chrome-export behaviour of the span layer.
//!
//! Lives in its own test binary (hence its own process) because it
//! shrinks the global ring capacity and inspects the process-global
//! span sink — things the in-crate unit tests must not race with.

use dk_obs::trace::{self, Stage};

#[test]
fn wraparound_keeps_newest_spans_and_chrome_export_is_wellformed() {
    trace::set_ring_capacity(8);
    dk_obs::enable();

    // Record from a dedicated named thread so this test's lane is
    // identifiable no matter what other tests in this binary do.
    std::thread::Builder::new()
        .name("ring-test".to_string())
        .spawn(|| {
            for i in 0..20u64 {
                let _s = trace::span(Stage::Encode, i, i % 3);
                std::hint::black_box(i);
            }
        })
        .unwrap()
        .join()
        .unwrap();

    let spans: Vec<_> =
        trace::snapshot().into_iter().filter(|s| s.thread == "ring-test").collect();
    // 20 spans through a capacity-8 ring: exactly the newest 8 remain.
    assert_eq!(spans.len(), 8, "ring must retain exactly its capacity");
    let batches: Vec<u64> = spans.iter().map(|s| s.batch).collect();
    assert_eq!(batches, (12..20).collect::<Vec<u64>>(), "newest spans must survive the wrap");
    // Sequence numbers are monotonic and match the write index.
    let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
    assert_eq!(seqs, (13..=20).collect::<Vec<u64>>());
    for s in &spans {
        assert_eq!(s.stage, Stage::Encode);
    }

    // Chrome export: one complete event per retained span, thread
    // metadata present, and the envelope is structurally sound.
    let json = trace::export_chrome();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"M\""), "thread_name metadata events");
    assert!(json.contains("ring-test"));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), trace::snapshot().len());
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces (well-formed JSON)"
    );

    // clear() drops retained spans but keeps the lane registered.
    trace::clear();
    assert!(trace::snapshot().iter().all(|s| s.thread != "ring-test"));
    dk_obs::disable();

    // Disabled spans record nothing.
    {
        let _s = trace::span(Stage::Decode, 99, 0);
    }
    assert!(trace::snapshot().iter().all(|s| s.batch != 99));
}
