//! Fleet health: per-worker fault and throughput accounting.
//!
//! The dispatcher, the TCP transport, the session, and the recovery
//! path all report into one process-global [`FleetHealth`] through
//! cheap per-worker [`WorkerHandle`]s (registered at setup). Recording
//! is gated on the master switch ([`crate::enabled`], one relaxed
//! load when disabled) and is lock-free when enabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Coarse classification of a `GpuError` (mirrors `dk_gpu`'s variants
/// without depending on it — `dk_obs` sits below every other crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Worker thread/process/connection gone.
    WorkerLost,
    /// Deadline expired waiting for a reply.
    Timeout,
    /// More jobs than workers.
    Oversubscribed,
    /// Remote worker reported a protocol-level failure.
    Remote,
    /// Malformed or incompatible wire frame.
    Protocol,
}

impl FaultKind {
    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            FaultKind::WorkerLost => 0,
            FaultKind::Timeout => 1,
            FaultKind::Oversubscribed => 2,
            FaultKind::Remote => 3,
            FaultKind::Protocol => 4,
        }
    }

    /// Short label used in rendered tables.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::WorkerLost => "lost",
            FaultKind::Timeout => "timeout",
            FaultKind::Oversubscribed => "oversub",
            FaultKind::Remote => "remote",
            FaultKind::Protocol => "protocol",
        }
    }

    fn all() -> [FaultKind; Self::COUNT] {
        [
            FaultKind::WorkerLost,
            FaultKind::Timeout,
            FaultKind::Oversubscribed,
            FaultKind::Remote,
            FaultKind::Protocol,
        ]
    }
}

struct WorkerCell {
    id: usize,
    jobs: AtomicU64,
    busy_ns: AtomicU64,
    frames: AtomicU64,
    bytes_framed: AtomicU64,
    reconnects: AtomicU64,
    faults: [AtomicU64; FaultKind::COUNT],
    quarantines: AtomicU64,
    repairs: AtomicU64,
}

/// A recording handle for one worker. Clone freely; all clones share
/// the same cells. Every recording method is a no-op (one relaxed
/// load) while observability is disabled.
#[derive(Clone)]
pub struct WorkerHandle(Arc<WorkerCell>);

impl WorkerHandle {
    /// One job executed, occupying the worker for `busy_ns`.
    #[inline]
    pub fn job_done(&self, busy_ns: u64) {
        if crate::enabled() {
            self.0.jobs.fetch_add(1, Ordering::Relaxed);
            self.0.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        }
    }

    /// One wire frame of `bytes` moved to/from this worker.
    #[inline]
    pub fn framed(&self, bytes: u64) {
        if crate::enabled() {
            self.0.frames.fetch_add(1, Ordering::Relaxed);
            self.0.bytes_framed.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// The transport re-established this worker's connection.
    #[inline]
    pub fn reconnected(&self) {
        if crate::enabled() {
            self.0.reconnects.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A fault of `kind` was attributed to this worker.
    #[inline]
    pub fn fault(&self, kind: FaultKind) {
        if crate::enabled() {
            self.0.faults[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The session quarantined this worker.
    #[inline]
    pub fn quarantined(&self) {
        if crate::enabled() {
            self.0.quarantines.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The TEE repaired `rows` results owed by this worker.
    #[inline]
    pub fn repaired(&self, rows: u64) {
        if crate::enabled() {
            self.0.repairs.fetch_add(rows, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of one worker's health counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerHealth {
    /// Worker id (the fleet's `WorkerId` index).
    pub worker: usize,
    /// Jobs executed.
    pub jobs: u64,
    /// Total execution occupancy, nanoseconds.
    pub busy_ns: u64,
    /// Wire frames moved (0 for in-process workers).
    pub frames: u64,
    /// Wire bytes moved (0 for in-process workers).
    pub bytes_framed: u64,
    /// Transport reconnects (redials).
    pub reconnects: u64,
    /// Faults by kind, indexed like [`FaultKind`].
    pub faults: [u64; 5],
    /// Times the session quarantined this worker.
    pub quarantines: u64,
    /// Rows the TEE recomputed on this worker's behalf.
    pub repairs: u64,
}

/// The process-global per-worker health aggregate.
pub struct FleetHealth {
    workers: Mutex<Vec<Arc<WorkerCell>>>,
}

static FLEET: OnceLock<FleetHealth> = OnceLock::new();

/// The process-global [`FleetHealth`].
pub fn fleet() -> &'static FleetHealth {
    FLEET.get_or_init(|| FleetHealth { workers: Mutex::new(Vec::new()) })
}

impl FleetHealth {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Arc<WorkerCell>>> {
        self.workers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The recording handle for `worker` (created on first request).
    /// Setup-path only: may lock and allocate.
    pub fn worker(&self, worker: usize) -> WorkerHandle {
        let mut cells = self.lock();
        if let Some(c) = cells.iter().find(|c| c.id == worker) {
            return WorkerHandle(c.clone());
        }
        let cell = Arc::new(WorkerCell {
            id: worker,
            jobs: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            bytes_framed: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            faults: std::array::from_fn(|_| AtomicU64::new(0)),
            quarantines: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
        });
        cells.push(cell.clone());
        WorkerHandle(cell)
    }

    /// Copies of all registered workers' counters, sorted by id.
    pub fn snapshot(&self) -> Vec<WorkerHealth> {
        let cells = self.lock();
        let mut out: Vec<WorkerHealth> = cells
            .iter()
            .map(|c| WorkerHealth {
                worker: c.id,
                jobs: c.jobs.load(Ordering::Relaxed),
                busy_ns: c.busy_ns.load(Ordering::Relaxed),
                frames: c.frames.load(Ordering::Relaxed),
                bytes_framed: c.bytes_framed.load(Ordering::Relaxed),
                reconnects: c.reconnects.load(Ordering::Relaxed),
                faults: std::array::from_fn(|i| c.faults[i].load(Ordering::Relaxed)),
                quarantines: c.quarantines.load(Ordering::Relaxed),
                repairs: c.repairs.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|w| w.worker);
        out
    }

    /// Zero every counter (workers stay registered).
    pub fn reset(&self) {
        let cells = self.lock();
        for c in cells.iter() {
            c.jobs.store(0, Ordering::Relaxed);
            c.busy_ns.store(0, Ordering::Relaxed);
            c.frames.store(0, Ordering::Relaxed);
            c.bytes_framed.store(0, Ordering::Relaxed);
            c.reconnects.store(0, Ordering::Relaxed);
            for f in &c.faults {
                f.store(0, Ordering::Relaxed);
            }
            c.quarantines.store(0, Ordering::Relaxed);
            c.repairs.store(0, Ordering::Relaxed);
        }
    }

    /// A human-readable table of [`FleetHealth::snapshot`].
    pub fn render_table(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:>8} {:>10} {:>8} {:>12} {:>9} {:>24} {:>11} {:>8}\n",
            "worker", "jobs", "busy_ms", "frames", "bytes", "redials", "faults", "quarantines", "repairs"
        ));
        for w in &snap {
            let faults: Vec<String> = FaultKind::all()
                .iter()
                .zip(w.faults.iter())
                .filter(|(_, &n)| n > 0)
                .map(|(k, n)| format!("{}:{n}", k.as_str()))
                .collect();
            let faults = if faults.is_empty() { "-".to_string() } else { faults.join(" ") };
            out.push_str(&format!(
                "gpu{:<5} {:>8} {:>10.1} {:>8} {:>12} {:>9} {:>24} {:>11} {:>8}\n",
                w.worker,
                w.jobs,
                w.busy_ns as f64 / 1e6,
                w.frames,
                w.bytes_framed,
                w.reconnects,
                faults,
                w.quarantines,
                w.repairs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Uses the process-global switch + fleet, so this test keeps to
    // workers other unit tests don't touch and restores the switch.
    #[test]
    fn gated_recording_and_snapshot() {
        let h = fleet().worker(900);
        h.job_done(10);
        assert_eq!(
            fleet().snapshot().iter().find(|w| w.worker == 900).unwrap().jobs,
            0,
            "disabled recording must be a no-op"
        );
        crate::enable();
        h.job_done(10);
        h.framed(128);
        h.reconnected();
        h.fault(FaultKind::Timeout);
        h.quarantined();
        h.repaired(3);
        crate::disable();
        let snap = fleet().snapshot();
        let w = snap.iter().find(|w| w.worker == 900).unwrap();
        assert_eq!(w.jobs, 1);
        assert_eq!(w.busy_ns, 10);
        assert_eq!(w.frames, 1);
        assert_eq!(w.bytes_framed, 128);
        assert_eq!(w.reconnects, 1);
        assert_eq!(w.faults[FaultKind::Timeout.index()], 1);
        assert_eq!(w.quarantines, 1);
        assert_eq!(w.repairs, 3);
        let table = fleet().render_table();
        assert!(table.contains("gpu900"));
        assert!(table.contains("timeout:1"));
    }
}
