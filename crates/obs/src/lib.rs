//! `dk_obs` — zero-allocation observability for the DarKnight stack.
//!
//! Three coordinated facilities, all designed so the *disabled* state
//! (the default — benches and the alloc-regression gates rely on it)
//! costs at most **one relaxed atomic load per instrument site**, and
//! the *enabled* state stays allocation-free on the hot path:
//!
//! * [`metrics`] — a lock-free [`metrics::Registry`] of atomic
//!   counters, gauges, and fixed-bucket log-scale histograms. Handles
//!   are pre-registered at setup (registration may lock and allocate;
//!   the increment path never does). The process-global registry is
//!   reachable via [`global()`]; standalone registries
//!   ([`metrics::Registry::new`]) serve tests and embedded recorders.
//!   Export via [`metrics::Registry::render_prometheus`] (text
//!   exposition) and [`metrics::Registry::render_json`].
//! * [`trace`] — (batch, layer, stage) spans recorded into per-lane
//!   (per-thread) fixed-capacity ring buffers, exportable as
//!   chrome://tracing JSON ([`trace::export_chrome`]) so the §7.1
//!   pipeline overlap is *visible* per run, not just asserted.
//! * [`health`] — a [`health::FleetHealth`] view aggregating
//!   per-worker jobs completed, busy time, bytes framed, reconnects,
//!   fault kinds, quarantines, and TEE repairs.
//!
//! The single master switch is [`enable`] / [`disable`]: it governs
//! the global registry, the span layer, and fleet health together.
//! Instrument sites guard on [`enabled`] — one relaxed load — before
//! touching anything else.

pub mod health;
pub mod metrics;
pub mod trace;

pub use health::{fleet, FaultKind, FleetHealth, WorkerHandle, WorkerHealth};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{span, SpanRecord, Stage};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide master switch. Disabled by default; every
/// instrument site loads this (or a registry handle's shared flag)
/// exactly once with `Ordering::Relaxed` before doing any work.
static ENABLED: AtomicBool = AtomicBool::new(false);

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global metrics registry. Created on first use; its
/// enabled flag is kept in lock-step with the master switch.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let r = Registry::new();
        if ENABLED.load(Ordering::Relaxed) {
            r.enable();
        }
        r
    })
}

/// Turn on the global registry, span recording, and fleet health.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
    global().enable();
}

/// Turn everything back off. Already-recorded values are retained.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    global().disable();
}

/// Is the master switch on? One relaxed atomic load — this is the
/// whole disabled-mode cost of span and health instrument sites.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
