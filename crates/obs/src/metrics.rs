//! Lock-free metrics: atomic counters, gauges, and log₂-bucket
//! histograms behind a pre-registration [`Registry`].
//!
//! Registration (`registry.counter("...")` etc.) happens at setup and
//! may lock and allocate; it is idempotent — asking for the same
//! (name, labels) twice hands back a handle to the same cell, so
//! forked components naturally aggregate. The recording path
//! (`inc`/`add`/`set`/`record`) is wait-free: a relaxed load of the
//! shared enabled flag, then relaxed `fetch_add`s. No locks, no
//! allocation, no ordering constraints — these are statistics, not
//! synchronization.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets. Bucket `i ≥ 1` holds values `v` with
/// `2^(i-1) ≤ v < 2^i` (upper bound `2^i − 1`); bucket 0 holds `v = 0`.
/// 40 buckets cover `[0, 2^40)` — about 18 minutes when recording
/// nanoseconds — and anything larger clamps into the last bucket.
const BUCKETS: usize = 40;

/// The shared state of one histogram.
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i`.
    fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }
}

/// A monotonically increasing counter handle. Cheap to clone; all
/// clones share one cell.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1. When the registry is disabled this is one relaxed load.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. When the registry is disabled this is one relaxed load.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (reads even while disabled).
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge handle.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Add `d` (may be negative). Disabled cost: one relaxed load.
    #[inline]
    pub fn add(&self, d: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the value. Disabled cost: one relaxed load.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (reads even while disabled).
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A log₂-bucket histogram handle. `record` is three relaxed
/// `fetch_add`s when enabled, one relaxed load when disabled.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.buckets[HistogramCell::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.cell.sum.fetch_add(v, Ordering::Relaxed);
            self.cell.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile estimate (`q` in `[0, 100]`), reported
    /// as the upper bound of the bucket holding that rank. Because
    /// buckets are powers of two, the estimate `e` of a true value `t`
    /// satisfies `t ≤ e < 2·t` (exact for 0). Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.cell.buckets[i].load(Ordering::Relaxed);
            if cum >= rank {
                return HistogramCell::upper_bound(i);
            }
        }
        HistogramCell::upper_bound(BUCKETS - 1)
    }
}

enum Kind {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

struct Entry {
    name: String,
    /// Pre-formatted label pairs, e.g. `worker="3"` — empty when none.
    labels: String,
    kind: Kind,
}

/// A set of named metrics. Pre-register handles at setup; record
/// through the handles on the hot path. See the module docs for the
/// cost model.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn format_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

impl Registry {
    /// A fresh, **disabled** registry. Call [`Registry::enable`] (or
    /// [`crate::enable`] for the global one) to start recording.
    pub fn new() -> Self {
        Registry { enabled: Arc::new(AtomicBool::new(false)), entries: Mutex::new(Vec::new()) }
    }

    /// Start recording on all handles issued by this registry.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording. Values are retained and still readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Is this registry recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register (or look up) a counter. Setup-path only.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Register (or look up) a labeled counter, e.g.
    /// `counter_with("dk_tcp_frames_total", &[("worker", "3")])`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = format_labels(labels);
        let mut entries = self.lock();
        let cell = match entries.iter().find(|e| e.name == name && e.labels == labels) {
            Some(Entry { kind: Kind::Counter(c), .. }) => c.clone(),
            Some(_) => panic!("metric {name} already registered with a different type"),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                entries.push(Entry { name: name.to_string(), labels, kind: Kind::Counter(c.clone()) });
                c
            }
        };
        Counter { enabled: self.enabled.clone(), cell }
    }

    /// Register (or look up) a gauge. Setup-path only.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Register (or look up) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = format_labels(labels);
        let mut entries = self.lock();
        let cell = match entries.iter().find(|e| e.name == name && e.labels == labels) {
            Some(Entry { kind: Kind::Gauge(c), .. }) => c.clone(),
            Some(_) => panic!("metric {name} already registered with a different type"),
            None => {
                let c = Arc::new(AtomicI64::new(0));
                entries.push(Entry { name: name.to_string(), labels, kind: Kind::Gauge(c.clone()) });
                c
            }
        };
        Gauge { enabled: self.enabled.clone(), cell }
    }

    /// Register (or look up) a histogram. Setup-path only.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Register (or look up) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let labels = format_labels(labels);
        let mut entries = self.lock();
        let cell = match entries.iter().find(|e| e.name == name && e.labels == labels) {
            Some(Entry { kind: Kind::Histogram(c), .. }) => c.clone(),
            Some(_) => panic!("metric {name} already registered with a different type"),
            None => {
                let c = Arc::new(HistogramCell::new());
                entries
                    .push(Entry { name: name.to_string(), labels, kind: Kind::Histogram(c.clone()) });
                c
            }
        };
        Histogram { enabled: self.enabled.clone(), cell }
    }

    /// Prometheus text exposition (`# TYPE` lines, `_bucket`/`_sum`/
    /// `_count` expansion for histograms). Values read relaxed — a
    /// scrape concurrent with recording sees a near-consistent view.
    pub fn render_prometheus(&self) -> String {
        let entries = self.lock();
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for e in entries.iter() {
            let ty = match e.kind {
                Kind::Counter(_) => "counter",
                Kind::Gauge(_) => "gauge",
                Kind::Histogram(_) => "histogram",
            };
            if !typed.contains(&e.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", e.name, ty));
                typed.push(e.name.as_str());
            }
            let braced = |extra: &str| -> String {
                match (e.labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{}}}", e.labels),
                    (false, false) => format!("{{{},{extra}}}", e.labels),
                }
            };
            match &e.kind {
                Kind::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", e.name, braced(""), c.load(Ordering::Relaxed)));
                }
                Kind::Gauge(g) => {
                    out.push_str(&format!("{}{} {}\n", e.name, braced(""), g.load(Ordering::Relaxed)));
                }
                Kind::Histogram(h) => {
                    let mut cum = 0u64;
                    for i in 0..BUCKETS {
                        let n = h.buckets[i].load(Ordering::Relaxed);
                        cum += n;
                        // Keep the exposition compact: only emit
                        // buckets that bound at least one observation.
                        if n > 0 {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                e.name,
                                braced(&format!("le=\"{}\"", HistogramCell::upper_bound(i))),
                                cum
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        braced("le=\"+Inf\""),
                        h.count.load(Ordering::Relaxed)
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        braced(""),
                        h.sum.load(Ordering::Relaxed)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        braced(""),
                        h.count.load(Ordering::Relaxed)
                    ));
                }
            }
        }
        out
    }

    /// The same data as a flat JSON document (hand-rolled — the
    /// workspace carries no JSON dependency and names are ours).
    pub fn render_json(&self) -> String {
        let entries = self.lock();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for e in entries.iter() {
            let full = if e.labels.is_empty() {
                e.name.clone()
            } else {
                format!("{}{{{}}}", e.name, e.labels)
            };
            let full = full.replace('"', "\\\"");
            match &e.kind {
                Kind::Counter(c) => {
                    counters.push(format!("    {{\"name\": \"{full}\", \"value\": {}}}", c.load(Ordering::Relaxed)));
                }
                Kind::Gauge(g) => {
                    gauges.push(format!("    {{\"name\": \"{full}\", \"value\": {}}}", g.load(Ordering::Relaxed)));
                }
                Kind::Histogram(cell) => {
                    let h = Histogram { enabled: self.enabled.clone(), cell: cell.clone() };
                    hists.push(format!(
                        "    {{\"name\": \"{full}\", \"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count(),
                        h.sum(),
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.percentile(99.0)
                    ));
                }
            }
        }
        format!(
            "{{\n  \"counters\": [\n{}\n  ],\n  \"gauges\": [\n{}\n  ],\n  \"histograms\": [\n{}\n  ]\n}}\n",
            counters.join(",\n"),
            gauges.join(",\n"),
            hists.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        c.inc();
        g.set(7);
        h.record(100);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        r.enable();
        c.inc();
        g.set(7);
        h.record(100);
        assert_eq!(c.value(), 1);
        assert_eq!(g.value(), 7);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        r.enable();
        let a = r.counter_with("jobs", &[("worker", "1")]);
        let b = r.counter_with("jobs", &[("worker", "1")]);
        let other = r.counter_with("jobs", &[("worker", "2")]);
        a.add(3);
        b.add(4);
        other.inc();
        assert_eq!(a.value(), 7);
        assert_eq!(other.value(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics_at_setup() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn multithreaded_counts_are_exact_under_contention() {
        let r = Registry::new();
        r.enable();
        let c = r.counter("contended");
        let g = r.gauge("updown");
        let h = r.histogram("lat");
        const THREADS: usize = 8;
        const PER: u64 = 50_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                let g = g.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        c.inc();
                        g.inc();
                        g.dec();
                        h.record((t as u64) * PER + i);
                    }
                });
            }
        });
        assert_eq!(c.value(), THREADS as u64 * PER);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), THREADS as u64 * PER);
        let expect_sum: u64 = (0..(THREADS as u64 * PER)).sum();
        assert_eq!(h.sum(), expect_sum);
    }

    #[test]
    fn histogram_percentiles_bound_sorted_reference() {
        let r = Registry::new();
        r.enable();
        let h = r.histogram("h");
        // A spread of magnitudes, recorded in scrambled order.
        let mut vals: Vec<u64> = (0..1000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        vals.push(0);
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank - 1];
            let est = h.percentile(q);
            // Log2 buckets: the reported bound is at least the true
            // value and less than twice it (0 maps exactly).
            assert!(est >= exact, "p{q}: est {est} < exact {exact}");
            assert!(est <= exact.saturating_mul(2).max(1), "p{q}: est {est} > 2*exact {exact}");
        }
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.enable();
        r.counter("dk_test_total").add(5);
        r.gauge_with("dk_depth", &[("lane", "0")]).set(3);
        let h = r.histogram("dk_wait_us");
        h.record(3);
        h.record(300);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE dk_test_total counter"));
        assert!(text.contains("dk_test_total 5"));
        assert!(text.contains("# TYPE dk_depth gauge"));
        assert!(text.contains("dk_depth{lane=\"0\"} 3"));
        assert!(text.contains("# TYPE dk_wait_us histogram"));
        assert!(text.contains("dk_wait_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dk_wait_us_sum 303"));
        assert!(text.contains("dk_wait_us_count 2"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_split_once_space();
            assert!(value.parse::<i64>().is_ok(), "unparseable line: {line}");
        }
        let json = r.render_json();
        assert!(json.contains("\"dk_test_total\""));
        assert!(json.contains("\"p95\""));
    }

    trait RSplit {
        fn rsplit_split_once_space(&self) -> (&str, &str);
    }
    impl RSplit for str {
        fn rsplit_split_once_space(&self) -> (&str, &str) {
            self.rsplit_once(' ').expect("line has a value field")
        }
    }
}
