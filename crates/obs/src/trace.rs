//! Tracing spans: per-lane ring buffers and chrome://tracing export.
//!
//! Every thread that records a span lazily registers one fixed-capacity
//! ring buffer (the "lane") with a process-global sink — the one-time
//! allocation happens on the first span a thread ever records (during
//! warm-up in practice), after which recording is allocation-free:
//! `Instant::now` twice plus a handful of relaxed stores into a
//! pre-allocated slot. When the ring wraps, the oldest spans are
//! overwritten — the newest window is always retained.
//!
//! When observability is disabled ([`crate::enabled`] is false),
//! [`span`] costs one relaxed atomic load and returns an inert guard.
//!
//! Export with [`export_chrome`]: a chrome://tracing / Perfetto
//! "traceEvents" JSON document with one `tid` per lane, so the §7.1
//! encode/compute/decode overlap across pipeline lanes is directly
//! visible on a timeline. [`snapshot`] returns the same data as
//! structured [`SpanRecord`]s for tests.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Which stage of the TEE/GPU protocol a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Float → field quantization of activations in the TEE.
    Quantize,
    /// Algorithm-1 masking: noise draw + coefficient-matrix encode.
    Encode,
    /// Jobs handed to the accelerator backend (includes the wait for
    /// results in sequential mode; only the submit+redeem in pipelined).
    Dispatch,
    /// TEE decode with `A⁻¹` (forward or backward).
    Decode,
    /// The §4.4 redundant-equation integrity check.
    Verify,
    /// TEE recomputation repairing quarantined / faulty worker rows.
    Repair,
}

impl Stage {
    /// Short lowercase name (used for chrome event names and metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Quantize => "quantize",
            Stage::Encode => "encode",
            Stage::Dispatch => "dispatch",
            Stage::Decode => "decode",
            Stage::Verify => "verify",
            Stage::Repair => "repair",
        }
    }

    fn from_u64(v: u64) -> Stage {
        match v {
            0 => Stage::Quantize,
            1 => Stage::Encode,
            2 => Stage::Dispatch,
            3 => Stage::Decode,
            4 => Stage::Verify,
            _ => Stage::Repair,
        }
    }
}

/// One completed span, as read back by [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Lane (ring) index — one per recording thread, in registration
    /// order. Becomes the chrome `tid`.
    pub lane: usize,
    /// Name of the recording thread at registration time (may be empty).
    pub thread: String,
    /// Protocol stage.
    pub stage: Stage,
    /// Virtual-batch number the span belongs to.
    pub batch: u64,
    /// Layer ordinal within the step (0 when not layer-scoped).
    pub layer: u64,
    /// Start, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Per-lane monotonic sequence number (1-based write index).
    pub seq: u64,
}

/// Default per-lane ring capacity (spans retained per thread).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Ring capacity applied to lanes registered *after* this call.
/// Intended for tests and long soaks; existing lanes keep their size.
pub fn set_ring_capacity(cap: usize) {
    RING_CAP.store(cap.max(1), Ordering::Relaxed);
}

static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

struct SpanSlot {
    /// 1-based write index; 0 marks an empty slot.
    seq: AtomicU64,
    stage: AtomicU64,
    batch: AtomicU64,
    layer: AtomicU64,
    start_us: AtomicU64,
    dur_ns: AtomicU64,
}

struct LaneRing {
    lane: usize,
    thread: String,
    cursor: AtomicUsize,
    slots: Box<[SpanSlot]>,
}

impl LaneRing {
    #[inline]
    fn push(&self, stage: Stage, batch: u64, layer: u64, start_us: u64, dur_ns: u64) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let s = &self.slots[i % self.slots.len()];
        s.stage.store(stage as u64, Ordering::Relaxed);
        s.batch.store(batch, Ordering::Relaxed);
        s.layer.store(layer, Ordering::Relaxed);
        s.start_us.store(start_us, Ordering::Relaxed);
        s.dur_ns.store(dur_ns, Ordering::Relaxed);
        // Written last: a concurrent snapshot treats seq = 0 as empty.
        s.seq.store(i as u64 + 1, Ordering::Relaxed);
    }
}

static SINK: OnceLock<Mutex<Vec<Arc<LaneRing>>>> = OnceLock::new();

fn sink() -> &'static Mutex<Vec<Arc<LaneRing>>> {
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process trace epoch — all span timestamps are relative to this.
/// Initialized the first time anything asks for it.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL_RING: OnceCell<Arc<LaneRing>> = const { OnceCell::new() };
}

fn register_ring() -> Arc<LaneRing> {
    let cap = RING_CAP.load(Ordering::Relaxed);
    let slots: Box<[SpanSlot]> = (0..cap)
        .map(|_| SpanSlot {
            seq: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            batch: AtomicU64::new(0),
            layer: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        })
        .collect();
    let mut rings = sink().lock().unwrap_or_else(|e| e.into_inner());
    let ring = Arc::new(LaneRing {
        lane: rings.len(),
        thread: std::thread::current().name().unwrap_or("").to_string(),
        cursor: AtomicUsize::new(0),
        slots,
    });
    rings.push(ring.clone());
    ring
}

/// An in-flight span. Records itself into the calling thread's lane
/// ring when dropped. Inert (a `None` payload) when observability was
/// disabled at creation.
pub struct SpanGuard {
    live: Option<(Instant, Stage, u64, u64)>,
}

impl SpanGuard {
    /// A guard that records nothing — for call sites that decide
    /// dynamically.
    pub fn inert() -> SpanGuard {
        SpanGuard { live: None }
    }
}

/// Open a span for `stage` of (`batch`, `layer`). Disabled cost: one
/// relaxed atomic load. The span closes (and is recorded) when the
/// returned guard drops.
#[inline]
pub fn span(stage: Stage, batch: u64, layer: u64) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    // Touch the epoch before taking the start timestamp so the first
    // span of the process can't start before its own epoch.
    let _ = epoch();
    SpanGuard { live: Some((Instant::now(), stage, batch, layer)) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, stage, batch, layer)) = self.live.take() {
            let end = Instant::now();
            let start_us = start.saturating_duration_since(epoch()).as_micros() as u64;
            let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
            LOCAL_RING.with(|c| {
                c.get_or_init(register_ring).push(stage, batch, layer, start_us, dur_ns);
            });
        }
    }
}

/// All retained spans across all lanes, ordered by lane then sequence.
pub fn snapshot() -> Vec<SpanRecord> {
    let rings = sink().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for ring in rings.iter() {
        let cap = ring.slots.len();
        let mut lane_spans: Vec<SpanRecord> = ring
            .slots
            .iter()
            .filter_map(|s| {
                let seq = s.seq.load(Ordering::Relaxed);
                if seq == 0 {
                    return None;
                }
                Some(SpanRecord {
                    lane: ring.lane,
                    thread: ring.thread.clone(),
                    stage: Stage::from_u64(s.stage.load(Ordering::Relaxed)),
                    batch: s.batch.load(Ordering::Relaxed),
                    layer: s.layer.load(Ordering::Relaxed),
                    start_us: s.start_us.load(Ordering::Relaxed),
                    dur_ns: s.dur_ns.load(Ordering::Relaxed),
                    seq,
                })
            })
            .collect();
        lane_spans.sort_by_key(|s| s.seq);
        // A wrapped ring can hold at most `cap` live spans; torn reads
        // during concurrent recording can momentarily show more — keep
        // the newest window.
        if lane_spans.len() > cap {
            lane_spans.drain(..lane_spans.len() - cap);
        }
        out.extend(lane_spans);
    }
    out
}

/// Drop all retained spans (ring memory is kept). Lanes stay
/// registered; sequence numbers continue from where they were.
pub fn clear() {
    let rings = sink().lock().unwrap_or_else(|e| e.into_inner());
    for ring in rings.iter() {
        for s in ring.slots.iter() {
            s.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// Render every retained span as a chrome://tracing (Perfetto) JSON
/// document: complete (`"ph": "X"`) events with one `tid` per lane,
/// plus thread-name metadata events. Load via chrome://tracing "Load"
/// or <https://ui.perfetto.dev>.
pub fn export_chrome() -> String {
    let spans = snapshot();
    let mut events = Vec::new();
    let rings = sink().lock().unwrap_or_else(|e| e.into_inner());
    for ring in rings.iter() {
        let label = if ring.thread.is_empty() {
            format!("lane-{}", ring.lane)
        } else {
            format!("lane-{} ({})", ring.lane, ring.thread)
        };
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            ring.lane, label
        ));
    }
    drop(rings);
    for s in &spans {
        // chrome ts/dur are microseconds; keep sub-µs spans visible.
        let dur_us = (s.dur_ns as f64 / 1000.0).max(0.001);
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"dk\",\"ph\":\"X\",\"ts\":{},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"batch\":{},\"layer\":{}}}}}",
            s.stage.as_str(),
            s.start_us,
            dur_us,
            s.lane,
            s.batch,
            s.layer
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}
