//! The untrusted memory region of Algorithm 2.
//!
//! Between virtual batches DarKnight seals each `∇W_v` and evicts it
//! here; after the last virtual batch the blobs are reloaded shard-wise
//! and aggregated inside the enclave. The store is untrusted: tests use
//! [`UntrustedStore::tamper`] to verify that a malicious host flipping
//! bits is always detected by the seal MAC.

use crate::crypto::SealedBlob;
use std::collections::HashMap;

/// Untrusted blob storage keyed by `(id)` (e.g. virtual-batch index, or
/// `(batch, shard)` packed by the caller).
#[derive(Debug, Default)]
pub struct UntrustedStore {
    blobs: HashMap<u64, SealedBlob>,
    bytes_written: u64,
    bytes_read: u64,
}

impl UntrustedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) a blob under `id`.
    pub fn put(&mut self, id: u64, blob: SealedBlob) {
        self.bytes_written += blob.len() as u64;
        self.blobs.insert(id, blob);
    }

    /// Fetches a blob by id.
    pub fn get(&mut self, id: u64) -> Option<SealedBlob> {
        let blob = self.blobs.get(&id).cloned();
        if let Some(b) = &blob {
            self.bytes_read += b.len() as u64;
        }
        blob
    }

    /// Removes a blob, returning it if present.
    pub fn remove(&mut self, id: u64) -> Option<SealedBlob> {
        self.blobs.remove(&id)
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total bytes written so far (traffic accounting for Fig. 3).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Adversarial mutation: XORs a byte of the stored ciphertext.
    /// Returns false if the id is unknown.
    pub fn tamper(&mut self, id: u64, byte_index: usize) -> bool {
        match self.blobs.get_mut(&id) {
            Some(blob) if !blob.ciphertext.is_empty() => {
                let i = byte_index % blob.ciphertext.len();
                blob.ciphertext[i] ^= 0x55;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::SealKey;

    #[test]
    fn put_get_round_trip() {
        let mut key = SealKey::derive(b"k");
        let mut store = UntrustedStore::new();
        store.put(1, key.seal(b"grad shard"));
        let blob = store.get(1).unwrap();
        assert_eq!(key.unseal(&blob).unwrap(), b"grad shard");
        assert!(store.get(2).is_none());
    }

    #[test]
    fn traffic_accounting() {
        let mut key = SealKey::derive(b"k");
        let mut store = UntrustedStore::new();
        let blob = key.seal(&[0u8; 100]);
        let len = blob.len() as u64;
        store.put(1, blob);
        assert_eq!(store.bytes_written(), len);
        let _ = store.get(1);
        assert_eq!(store.bytes_read(), len);
    }

    #[test]
    fn tamper_is_detected_on_unseal() {
        let mut key = SealKey::derive(b"k");
        let mut store = UntrustedStore::new();
        store.put(7, key.seal(b"sensitive dW"));
        assert!(store.tamper(7, 3));
        let blob = store.get(7).unwrap();
        assert!(key.unseal(&blob).is_err());
    }

    #[test]
    fn tamper_unknown_id_is_noop() {
        let mut store = UntrustedStore::new();
        assert!(!store.tamper(42, 0));
    }

    #[test]
    fn remove_clears_entry() {
        let mut key = SealKey::derive(b"k");
        let mut store = UntrustedStore::new();
        store.put(1, key.seal(b"a"));
        assert_eq!(store.len(), 1);
        assert!(store.remove(1).is_some());
        assert!(store.is_empty());
    }
}
