//! Cryptographic primitives for the TEE simulation.
//!
//! All implemented from scratch (the dependency policy permits no crypto
//! crates): [`sha256`] for measurements, [`chacha`] for sealing
//! confidentiality, [`siphash`] for sealing integrity, composed into the
//! encrypt-then-MAC [`SealKey`].

pub mod chacha;
pub mod sha256;
pub mod siphash;

use chacha::ChaCha20;
use sha256::Sha256;
use siphash::siphash24;

/// A sealed (encrypted + authenticated) blob, as produced by
/// [`SealKey::seal`]. This is what Algorithm 2 writes to untrusted
/// memory between virtual batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Per-blob nonce (derived from the sealing sequence number).
    pub nonce: [u8; 12],
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// SipHash-2-4 tag over nonce ‖ ciphertext.
    pub tag: u64,
}

impl SealedBlob {
    /// Total size in bytes (for memory accounting).
    pub fn len(&self) -> usize {
        12 + self.ciphertext.len() + 8
    }

    /// True if the ciphertext is empty.
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }
}

/// Errors from unsealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The MAC did not verify: the blob was corrupted or forged.
    TagMismatch,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::TagMismatch => write!(f, "sealed blob failed authentication"),
        }
    }
}

impl std::error::Error for SealError {}

/// An enclave sealing key: encrypt-then-MAC with independent subkeys
/// derived from a master secret.
#[derive(Debug, Clone)]
pub struct SealKey {
    enc_key: [u8; 32],
    mac_key: [u8; 16],
    seq: u64,
}

impl SealKey {
    /// Derives a sealing key from master secret bytes (domain-separated
    /// SHA-256, mimicking SGX's EGETKEY derivation).
    pub fn derive(master: &[u8]) -> Self {
        let mut enc = Sha256::new();
        enc.update(b"darknight-seal-enc");
        enc.update(master);
        let mut mac = Sha256::new();
        mac.update(b"darknight-seal-mac");
        mac.update(master);
        let mac_digest = mac.finalize();
        let mut mac_key = [0u8; 16];
        mac_key.copy_from_slice(&mac_digest[..16]);
        Self { enc_key: enc.finalize(), mac_key, seq: 0 }
    }

    /// Seals a plaintext: encrypts with a fresh nonce and appends a MAC.
    pub fn seal(&mut self, plaintext: &[u8]) -> SealedBlob {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.seq.to_le_bytes());
        self.seq += 1;
        let mut ciphertext = plaintext.to_vec();
        ChaCha20::new(&self.enc_key, &nonce).apply(&mut ciphertext);
        let tag = self.compute_tag(&nonce, &ciphertext);
        SealedBlob { nonce, ciphertext, tag }
    }

    /// Unseals a blob, verifying integrity first.
    ///
    /// # Errors
    ///
    /// [`SealError::TagMismatch`] if the blob was tampered with.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, SealError> {
        let expect = self.compute_tag(&blob.nonce, &blob.ciphertext);
        if expect != blob.tag {
            return Err(SealError::TagMismatch);
        }
        let mut plaintext = blob.ciphertext.clone();
        ChaCha20::new(&self.enc_key, &blob.nonce).apply(&mut plaintext);
        Ok(plaintext)
    }

    fn compute_tag(&self, nonce: &[u8; 12], ciphertext: &[u8]) -> u64 {
        let mut msg = Vec::with_capacity(12 + ciphertext.len());
        msg.extend_from_slice(nonce);
        msg.extend_from_slice(ciphertext);
        siphash24(&self.mac_key, &msg)
    }
}

/// Serializes a slice of `f32` to little-endian bytes (sealing payloads).
pub fn f32s_to_bytes(vals: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes little-endian bytes back to `f32`s.
///
/// # Panics
///
/// Panics if the byte length is not a multiple of 4.
pub fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    assert_eq!(bytes.len() % 4, 0, "byte length must be a multiple of 4");
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let mut key = SealKey::derive(b"master secret");
        let blob = key.seal(b"gradient update bytes");
        assert_eq!(key.unseal(&blob).unwrap(), b"gradient update bytes");
    }

    #[test]
    fn tamper_detected_in_ciphertext() {
        let mut key = SealKey::derive(b"m");
        let mut blob = key.seal(b"payload");
        blob.ciphertext[0] ^= 1;
        assert_eq!(key.unseal(&blob), Err(SealError::TagMismatch));
    }

    #[test]
    fn tamper_detected_in_nonce() {
        let mut key = SealKey::derive(b"m");
        let mut blob = key.seal(b"payload");
        blob.nonce[0] ^= 1;
        assert_eq!(key.unseal(&blob), Err(SealError::TagMismatch));
    }

    #[test]
    fn tamper_detected_in_tag() {
        let mut key = SealKey::derive(b"m");
        let mut blob = key.seal(b"payload");
        blob.tag ^= 1;
        assert_eq!(key.unseal(&blob), Err(SealError::TagMismatch));
    }

    #[test]
    fn nonces_are_unique_per_seal() {
        let mut key = SealKey::derive(b"m");
        let a = key.seal(b"same");
        let b = key.seal(b"same");
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn different_masters_cannot_unseal() {
        let mut k1 = SealKey::derive(b"alpha");
        let k2 = SealKey::derive(b"beta");
        let blob = k1.seal(b"secret");
        assert!(k2.unseal(&blob).is_err());
    }

    #[test]
    fn f32_bytes_round_trip() {
        let vals = [1.5f32, -0.25, 1e-9, f32::MAX];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&vals)), vals);
    }

    #[test]
    fn empty_blob_round_trip() {
        let mut key = SealKey::derive(b"m");
        let blob = key.seal(b"");
        assert!(blob.is_empty());
        assert_eq!(key.unseal(&blob).unwrap(), Vec::<u8>::new());
    }
}
