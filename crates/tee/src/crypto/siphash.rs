//! SipHash-2-4 keyed MAC (Aumasson–Bernstein), the integrity half of the
//! enclave's sealing primitive.

/// Computes the 64-bit SipHash-2-4 tag of `data` under a 128-bit key.
///
/// # Example
///
/// ```
/// use dk_tee::crypto::siphash::siphash24;
///
/// let key = [0u8; 16];
/// assert_ne!(siphash24(&key, b"a"), siphash24(&key, b"b"));
/// ```
pub fn siphash24(key: &[u8; 16], data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
    let mut v0 = 0x736f6d6570736575u64 ^ k0;
    let mut v1 = 0x646f72616e646f6du64 ^ k1;
    let mut v2 = 0x6c7967656e657261u64 ^ k0;
    let mut v3 = 0x7465646279746573u64 ^ k1;

    #[inline]
    fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
        *v0 = v0.wrapping_add(*v1);
        *v1 = v1.rotate_left(13);
        *v1 ^= *v0;
        *v0 = v0.rotate_left(32);
        *v2 = v2.wrapping_add(*v3);
        *v3 = v3.rotate_left(16);
        *v3 ^= *v2;
        *v0 = v0.wrapping_add(*v3);
        *v3 = v3.rotate_left(21);
        *v3 ^= *v0;
        *v2 = v2.wrapping_add(*v1);
        *v1 = v1.rotate_left(17);
        *v1 ^= *v2;
        *v2 = v2.rotate_left(32);
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v3 ^= m;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = (data.len() as u64) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v3 ^= last;
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^= last;

    v2 ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    }
    v0 ^ v1 ^ v2 ^ v3
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper (Appendix A): key
    /// 000102…0f, messages of increasing length 0,1,2,…
    #[test]
    fn paper_test_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let expected: [u64; 8] = [
            0x726fdb47dd0e0e31,
            0x74f839c593dc67fd,
            0x0d6c8009d9a94f5a,
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
        ];
        let data: Vec<u8> = (0..8u8).collect();
        for (len, &want) in expected.iter().enumerate() {
            assert_eq!(siphash24(&key, &data[..len]), want, "len={len}");
        }
    }

    #[test]
    fn key_sensitivity() {
        let k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k2[15] = 1;
        assert_ne!(siphash24(&k1, b"message"), siphash24(&k2, b"message"));
    }

    #[test]
    fn message_sensitivity() {
        let key = [7u8; 16];
        let a = siphash24(&key, b"gradient shard 0");
        let b = siphash24(&key, b"gradient shard 1");
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let key = [3u8; 16];
        assert_eq!(siphash24(&key, b"x"), siphash24(&key, b"x"));
    }
}
