//! ChaCha20 stream cipher (RFC 8439), the confidentiality half of the
//! enclave's sealing primitive.

/// ChaCha20 keystream generator / XOR cipher.
///
/// Encryption and decryption are the same XOR operation.
///
/// # Example
///
/// ```
/// use dk_tee::crypto::chacha::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut data = b"secret gradient shard".to_vec();
/// ChaCha20::new(&key, &nonce).apply(&mut data);
/// assert_ne!(&data, b"secret gradient shard");
/// ChaCha20::new(&key, &nonce).apply(&mut data);
/// assert_eq!(&data, b"secret gradient shard");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

impl ChaCha20 {
    /// Creates a cipher instance with block counter 0.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        Self::with_counter(key, nonce, 0)
    }

    /// Creates a cipher instance starting at the given block counter.
    pub fn with_counter(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        Self { state }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            // column rounds
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let v = working[i].wrapping_add(self.state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let ks = self.block();
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector: keystream block with the standard
    /// key/nonce/counter.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::with_counter(&key, &nonce, 1);
        let block = c.block();
        let expect_start = [0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        assert_eq!(&block[..8], &expect_start);
        let expect_end = [0xa2, 0x50, 0x3c, 0x4e];
        assert_eq!(&block[60..], &expect_end);
    }

    /// RFC 8439 §2.4.2: full plaintext encryption vector (first bytes).
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        ChaCha20::with_counter(&key, &nonce, 1).apply(&mut data);
        assert_eq!(&data[..8], &[0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80]);
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let mut data = original.clone();
            ChaCha20::new(&key, &nonce).apply(&mut data);
            if len > 8 {
                assert_ne!(data, original, "len={len}");
            }
            ChaCha20::new(&key, &nonce).apply(&mut data);
            assert_eq!(data, original, "len={len}");
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ChaCha20::new(&key, &[0u8; 12]).apply(&mut a);
        ChaCha20::new(&key, &[1u8; 12]).apply(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_continuation_matches_streaming() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut whole = vec![0u8; 128];
        ChaCha20::new(&key, &nonce).apply(&mut whole);
        let mut first = vec![0u8; 64];
        ChaCha20::with_counter(&key, &nonce, 0).apply(&mut first);
        let mut second = vec![0u8; 64];
        ChaCha20::with_counter(&key, &nonce, 1).apply(&mut second);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }
}
