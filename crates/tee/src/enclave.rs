//! The enclave simulator: protected-memory budget and sealing.
//!
//! SGX's defining performance constraint is its small protected memory
//! (the paper's hardware has a 128 MB EPC, ~93 MB usable). Everything
//! DarKnight does with virtual batches — why `K` is 4-8 and not 128, why
//! Fig. 3 has a sweet spot, why Fig. 6b degrades past `K = 4`, why SGX
//! multithreading *hurts* (Fig. 7) — follows from this budget. The
//! simulator therefore enforces the budget on every allocation the
//! private executor makes and counts paging events when the working set
//! exceeds it.

use crate::crypto::{SealError, SealKey, SealedBlob, sha256::Sha256};

/// Enclave protected-memory configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcConfig {
    /// Usable protected bytes.
    pub capacity_bytes: usize,
}

impl EpcConfig {
    /// The paper's platform: SGXv1 with 128 MB EPC, ~93 MB usable after
    /// metadata (the commonly cited figure for SGXv1).
    pub fn sgx_v1() -> Self {
        Self { capacity_bytes: 93 * 1024 * 1024 }
    }

    /// A custom capacity (tests use small budgets to force paging).
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        Self { capacity_bytes }
    }
}

impl Default for EpcConfig {
    fn default() -> Self {
        Self::sgx_v1()
    }
}

/// Counters describing enclave memory behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    // NOTE: every field participates in [`MemoryStats::merge`] below —
    // keep the two in sync when adding counters.
    /// Bytes currently allocated inside the enclave.
    pub current_bytes: usize,
    /// Peak allocation.
    pub peak_bytes: usize,
    /// Number of successful allocations.
    pub alloc_count: u64,
    /// EPC paging events (allocations that exceeded capacity and had to
    /// evict+encrypt pages, SGX's dominant overhead).
    pub paging_events: u64,
    /// Bytes moved by paging.
    pub paged_bytes: u64,
    /// Bytes sealed out to untrusted memory.
    pub sealed_out_bytes: u64,
    /// Bytes unsealed back in.
    pub sealed_in_bytes: u64,
    /// Number of seal operations.
    pub seal_count: u64,
    /// Number of unseal operations.
    pub unseal_count: u64,
}

impl MemoryStats {
    /// Adds another enclave's counters into this one. Used to aggregate
    /// across co-resident enclaves (e.g. the pipelined engine's lanes);
    /// peaks and current bytes are summed because the enclaves occupy
    /// protected memory simultaneously.
    pub fn merge(&mut self, o: &MemoryStats) {
        self.current_bytes += o.current_bytes;
        self.peak_bytes += o.peak_bytes;
        self.alloc_count += o.alloc_count;
        self.paging_events += o.paging_events;
        self.paged_bytes += o.paged_bytes;
        self.sealed_out_bytes += o.sealed_out_bytes;
        self.sealed_in_bytes += o.sealed_in_bytes;
        self.seal_count += o.seal_count;
        self.unseal_count += o.unseal_count;
    }
}

/// Errors from enclave operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveError {
    /// A strict allocation did not fit in the EPC.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// Unsealing failed authentication.
    Seal(SealError),
    /// Attempt to release more bytes than are allocated.
    ReleaseUnderflow,
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::OutOfMemory { requested, available } => {
                write!(f, "enclave out of protected memory: requested {requested}, available {available}")
            }
            EnclaveError::Seal(e) => write!(f, "sealing failure: {e}"),
            EnclaveError::ReleaseUnderflow => write!(f, "released more enclave memory than allocated"),
        }
    }
}

impl std::error::Error for EnclaveError {}

impl From<SealError> for EnclaveError {
    fn from(e: SealError) -> Self {
        EnclaveError::Seal(e)
    }
}

/// A simulated SGX enclave.
///
/// # Example
///
/// ```
/// use dk_tee::{Enclave, EpcConfig};
///
/// let mut enclave = Enclave::new(EpcConfig::with_capacity(1024), b"darknight-v1");
/// enclave.alloc(512).unwrap();
/// assert!(enclave.alloc(600).is_err()); // budget enforced
/// enclave.release(512).unwrap();
/// ```
#[derive(Debug)]
pub struct Enclave {
    config: EpcConfig,
    stats: MemoryStats,
    seal_key: SealKey,
    measurement: [u8; 32],
}

impl Enclave {
    /// Creates an enclave whose measurement is the SHA-256 of
    /// `code_identity` (standing in for MRENCLAVE).
    pub fn new(config: EpcConfig, code_identity: &[u8]) -> Self {
        let measurement = Sha256::digest(code_identity);
        let mut key_material = b"seal:".to_vec();
        key_material.extend_from_slice(&measurement);
        Self {
            config,
            stats: MemoryStats::default(),
            seal_key: SealKey::derive(&key_material),
            measurement,
        }
    }

    /// The enclave measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> [u8; 32] {
        self.measurement
    }

    /// The configured protected capacity.
    pub fn capacity(&self) -> usize {
        self.config.capacity_bytes
    }

    /// Bytes still available before paging.
    pub fn available(&self) -> usize {
        self.config.capacity_bytes.saturating_sub(self.stats.current_bytes)
    }

    /// Strictly allocates protected memory; fails if it does not fit.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::OutOfMemory`] if the allocation exceeds capacity.
    pub fn alloc(&mut self, bytes: usize) -> Result<(), EnclaveError> {
        if bytes > self.available() {
            return Err(EnclaveError::OutOfMemory { requested: bytes, available: self.available() });
        }
        self.stats.current_bytes += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.current_bytes);
        self.stats.alloc_count += 1;
        Ok(())
    }

    /// Allocates with overcommit: succeeds always, but every byte beyond
    /// capacity is charged as paging traffic (the SGX EWB/ELD path).
    /// Returns the number of paged bytes.
    pub fn alloc_paged(&mut self, bytes: usize) -> usize {
        let fits = self.available().min(bytes);
        let overflow = bytes - fits;
        self.stats.current_bytes += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.current_bytes);
        self.stats.alloc_count += 1;
        if overflow > 0 {
            self.stats.paging_events += 1;
            self.stats.paged_bytes += overflow as u64;
        }
        overflow
    }

    /// Releases previously allocated protected memory.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::ReleaseUnderflow`] if more is released than held.
    pub fn release(&mut self, bytes: usize) -> Result<(), EnclaveError> {
        if bytes > self.stats.current_bytes {
            return Err(EnclaveError::ReleaseUnderflow);
        }
        self.stats.current_bytes -= bytes;
        Ok(())
    }

    /// Seals data for storage outside the enclave (Algorithm 2 line 9).
    pub fn seal(&mut self, plaintext: &[u8]) -> SealedBlob {
        self.stats.seal_count += 1;
        self.stats.sealed_out_bytes += plaintext.len() as u64;
        self.seal_key.seal(plaintext)
    }

    /// Unseals data previously sealed by this enclave (Algorithm 2
    /// line 19).
    ///
    /// # Errors
    ///
    /// [`EnclaveError::Seal`] on authentication failure.
    pub fn unseal(&mut self, blob: &SealedBlob) -> Result<Vec<u8>, EnclaveError> {
        let plaintext = self.seal_key.unseal(blob)?;
        self.stats.unseal_count += 1;
        self.stats.sealed_in_bytes += plaintext.len() as u64;
        Ok(plaintext)
    }

    /// Memory statistics so far.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Resets the counters (capacity and keys retained).
    pub fn reset_stats(&mut self) {
        let current = self.stats.current_bytes;
        self.stats = MemoryStats { current_bytes: current, peak_bytes: current, ..Default::default() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_capacity() {
        let mut e = Enclave::new(EpcConfig::with_capacity(100), b"x");
        assert!(e.alloc(60).is_ok());
        assert_eq!(e.available(), 40);
        assert!(e.alloc(41).is_err());
        assert!(e.alloc(40).is_ok());
        assert_eq!(e.available(), 0);
    }

    #[test]
    fn release_returns_budget() {
        let mut e = Enclave::new(EpcConfig::with_capacity(100), b"x");
        e.alloc(80).unwrap();
        e.release(50).unwrap();
        assert!(e.alloc(60).is_ok());
    }

    #[test]
    fn release_underflow_detected() {
        let mut e = Enclave::new(EpcConfig::with_capacity(100), b"x");
        e.alloc(10).unwrap();
        assert_eq!(e.release(11), Err(EnclaveError::ReleaseUnderflow));
    }

    #[test]
    fn paged_alloc_counts_overflow() {
        let mut e = Enclave::new(EpcConfig::with_capacity(100), b"x");
        assert_eq!(e.alloc_paged(80), 0);
        assert_eq!(e.alloc_paged(50), 30);
        let s = e.stats();
        assert_eq!(s.paging_events, 1);
        assert_eq!(s.paged_bytes, 30);
        assert_eq!(s.peak_bytes, 130);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut e = Enclave::new(EpcConfig::with_capacity(1000), b"x");
        e.alloc(500).unwrap();
        e.release(400).unwrap();
        e.alloc(200).unwrap();
        assert_eq!(e.stats().peak_bytes, 500);
        assert_eq!(e.stats().current_bytes, 300);
    }

    #[test]
    fn seal_counts_bytes() {
        let mut e = Enclave::new(EpcConfig::default(), b"x");
        let blob = e.seal(&[1, 2, 3, 4]);
        let back = e.unseal(&blob).unwrap();
        assert_eq!(back, vec![1, 2, 3, 4]);
        let s = e.stats();
        assert_eq!(s.sealed_out_bytes, 4);
        assert_eq!(s.sealed_in_bytes, 4);
        assert_eq!((s.seal_count, s.unseal_count), (1, 1));
    }

    #[test]
    fn measurement_depends_on_identity() {
        let a = Enclave::new(EpcConfig::default(), b"code-v1");
        let b = Enclave::new(EpcConfig::default(), b"code-v2");
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn different_enclaves_cannot_unseal_each_other() {
        let mut a = Enclave::new(EpcConfig::default(), b"code-v1");
        let mut b = Enclave::new(EpcConfig::default(), b"code-v2");
        let blob = a.seal(b"secret");
        assert!(b.unseal(&blob).is_err());
    }

    #[test]
    fn default_capacity_is_sgx_v1() {
        let e = Enclave::new(EpcConfig::default(), b"x");
        assert_eq!(e.capacity(), 93 * 1024 * 1024);
    }

    #[test]
    fn reset_stats_keeps_current() {
        let mut e = Enclave::new(EpcConfig::with_capacity(100), b"x");
        e.alloc(30).unwrap();
        e.seal(b"abc");
        e.reset_stats();
        let s = e.stats();
        assert_eq!(s.current_bytes, 30);
        assert_eq!(s.seal_count, 0);
    }
}
