//! Authenticated-encryption message channels between the TEE and GPU
//! workers (the paper's "pairwise secure channel between TEE and each
//! GPU", §3).

use crate::crypto::chacha::ChaCha20;
use crate::crypto::sha256::Sha256;
use crate::crypto::siphash::siphash24;

/// An encrypted, authenticated, replay-protected message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Monotonic sequence number (replay protection).
    pub seq: u64,
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// SipHash tag over seq ‖ ciphertext.
    pub tag: u64,
}

/// Channel errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// MAC verification failed.
    TagMismatch,
    /// A message arrived out of order or was replayed.
    Replay {
        /// Expected sequence number.
        expected: u64,
        /// Received sequence number.
        got: u64,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::TagMismatch => write!(f, "message failed authentication"),
            ChannelError::Replay { expected, got } => {
                write!(f, "replay detected: expected seq {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// One direction of a secure channel.
///
/// Both endpoints derive the same keys from the shared session secret;
/// the `role` labels separate the two directions so each has an
/// independent keystream.
///
/// # Example
///
/// ```
/// use dk_tee::channel::SecureChannel;
///
/// let secret = [9u8; 32];
/// let mut tee_side = SecureChannel::new(&secret, "tee->gpu0");
/// let mut gpu_side = SecureChannel::new(&secret, "tee->gpu0");
/// let env = tee_side.encrypt(b"masked activations");
/// assert_eq!(gpu_side.decrypt(&env).unwrap(), b"masked activations");
/// ```
#[derive(Debug, Clone)]
pub struct SecureChannel {
    enc_key: [u8; 32],
    mac_key: [u8; 16],
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Derives a directional channel from the session secret and a
    /// direction label.
    pub fn new(session_secret: &[u8; 32], direction: &str) -> Self {
        let mut enc = Sha256::new();
        enc.update(b"chan-enc:");
        enc.update(direction.as_bytes());
        enc.update(session_secret);
        let mut mac = Sha256::new();
        mac.update(b"chan-mac:");
        mac.update(direction.as_bytes());
        mac.update(session_secret);
        let mac_digest = mac.finalize();
        let mut mac_key = [0u8; 16];
        mac_key.copy_from_slice(&mac_digest[..16]);
        Self { enc_key: enc.finalize(), mac_key, send_seq: 0, recv_seq: 0 }
    }

    fn nonce_for(seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&seq.to_le_bytes());
        n
    }

    /// Encrypts and authenticates a message.
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Envelope {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut ciphertext = plaintext.to_vec();
        ChaCha20::new(&self.enc_key, &Self::nonce_for(seq)).apply(&mut ciphertext);
        let tag = self.compute_tag(seq, &ciphertext);
        Envelope { seq, ciphertext, tag }
    }

    /// Verifies and decrypts a message, enforcing in-order delivery.
    ///
    /// # Errors
    ///
    /// [`ChannelError::TagMismatch`] on corruption,
    /// [`ChannelError::Replay`] on out-of-order sequence numbers.
    pub fn decrypt(&mut self, env: &Envelope) -> Result<Vec<u8>, ChannelError> {
        if env.seq != self.recv_seq {
            return Err(ChannelError::Replay { expected: self.recv_seq, got: env.seq });
        }
        let expect = self.compute_tag(env.seq, &env.ciphertext);
        if expect != env.tag {
            return Err(ChannelError::TagMismatch);
        }
        self.recv_seq += 1;
        let mut plaintext = env.ciphertext.clone();
        ChaCha20::new(&self.enc_key, &Self::nonce_for(env.seq)).apply(&mut plaintext);
        Ok(plaintext)
    }

    fn compute_tag(&self, seq: u64, ciphertext: &[u8]) -> u64 {
        let mut msg = Vec::with_capacity(8 + ciphertext.len());
        msg.extend_from_slice(&seq.to_le_bytes());
        msg.extend_from_slice(ciphertext);
        siphash24(&self.mac_key, &msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let secret = [7u8; 32];
        (SecureChannel::new(&secret, "d"), SecureChannel::new(&secret, "d"))
    }

    #[test]
    fn round_trip_sequence() {
        let (mut tx, mut rx) = pair();
        for i in 0..10u32 {
            let msg = format!("payload {i}");
            let env = tx.encrypt(msg.as_bytes());
            assert_eq!(rx.decrypt(&env).unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn corruption_detected() {
        let (mut tx, mut rx) = pair();
        let mut env = tx.encrypt(b"data");
        env.ciphertext[0] ^= 0xFF;
        assert_eq!(rx.decrypt(&env), Err(ChannelError::TagMismatch));
    }

    #[test]
    fn replay_detected() {
        let (mut tx, mut rx) = pair();
        let env = tx.encrypt(b"data");
        assert!(rx.decrypt(&env).is_ok());
        assert!(matches!(rx.decrypt(&env), Err(ChannelError::Replay { .. })));
    }

    #[test]
    fn out_of_order_detected() {
        let (mut tx, mut rx) = pair();
        let _e0 = tx.encrypt(b"first");
        let e1 = tx.encrypt(b"second");
        assert!(matches!(rx.decrypt(&e1), Err(ChannelError::Replay { expected: 0, got: 1 })));
    }

    #[test]
    fn directions_are_independent() {
        let secret = [7u8; 32];
        let mut a = SecureChannel::new(&secret, "tee->gpu");
        let mut b = SecureChannel::new(&secret, "gpu->tee");
        let env = a.encrypt(b"data");
        // Wrong-direction channel must fail authentication.
        assert_eq!(b.decrypt(&env), Err(ChannelError::TagMismatch));
    }

    #[test]
    fn distinct_secrets_fail() {
        let mut tx = SecureChannel::new(&[1u8; 32], "d");
        let mut rx = SecureChannel::new(&[2u8; 32], "d");
        let env = tx.encrypt(b"data");
        assert_eq!(rx.decrypt(&env), Err(ChannelError::TagMismatch));
    }
}
