//! Simulated local/remote attestation and session-key establishment.
//!
//! The paper's system model (§3) requires (a) the client to verify the
//! code running in the enclave before sending data, and (b) pairwise
//! secure channels between the TEE and each GPU, "established using a
//! secret key exchange protocol at the beginning of the session". This
//! module simulates both with a quote structure signed by a platform key
//! (standing in for the EPID/DCAP infrastructure) and a toy
//! Diffie–Hellman exchange over the 61-bit Mersenne prime field.
//!
//! **Not real cryptography** — a 61-bit DH group is trivially breakable;
//! it exists to exercise the protocol shape. See the crate-level
//! disclaimer.

use crate::crypto::sha256::Sha256;
use crate::crypto::siphash::siphash24;
use dk_field::{F61, FieldRng};

/// The DH generator used by the toy exchange.
const GENERATOR: u64 = 5;

/// A Diffie–Hellman key pair over `F_{2^61−1}`.
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: u64,
    public: F61,
}

impl KeyPair {
    /// Generates a key pair from the given RNG.
    pub fn generate(rng: &mut FieldRng) -> Self {
        // Secret in [2, p-2].
        let secret = 2 + rng.next_u64() % (F61::MODULUS - 3);
        let public = F61::new(GENERATOR).pow(secret);
        Self { secret, public }
    }

    /// The public half.
    pub fn public(&self) -> F61 {
        self.public
    }

    /// Computes the shared secret with a peer's public value and derives
    /// a 32-byte session key (SHA-256 over the shared group element and
    /// a context label).
    pub fn session_key(&self, peer_public: F61, context: &[u8]) -> [u8; 32] {
        let shared = peer_public.pow(self.secret);
        let mut h = Sha256::new();
        h.update(b"darknight-session");
        h.update(&shared.value().to_le_bytes());
        h.update(context);
        h.finalize()
    }
}

/// An attestation quote: the enclave's measurement bound to caller
/// report data (e.g. its DH public key), signed by the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// MRENCLAVE analogue.
    pub measurement: [u8; 32],
    /// 32 bytes of caller-chosen report data.
    pub report_data: [u8; 32],
    /// Platform signature (keyed MAC in this simulation).
    pub signature: u64,
}

/// The platform quoting key (simulates the attestation infrastructure;
/// shared between quote generation and verification).
#[derive(Debug, Clone)]
pub struct PlatformKey([u8; 16]);

impl PlatformKey {
    /// Derives the platform key from provisioning material.
    pub fn from_seed(seed: u64) -> Self {
        let d = Sha256::digest(&seed.to_le_bytes());
        let mut k = [0u8; 16];
        k.copy_from_slice(&d[..16]);
        Self(k)
    }

    /// Produces a quote over a measurement and report data.
    pub fn quote(&self, measurement: [u8; 32], report_data: [u8; 32]) -> Quote {
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(&measurement);
        msg.extend_from_slice(&report_data);
        Quote { measurement, report_data, signature: siphash24(&self.0, &msg) }
    }

    /// Verifies a quote's signature and (optionally) its measurement
    /// against an expected value.
    pub fn verify(&self, quote: &Quote, expected_measurement: Option<&[u8; 32]>) -> bool {
        if let Some(m) = expected_measurement {
            if m != &quote.measurement {
                return false;
            }
        }
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(&quote.measurement);
        msg.extend_from_slice(&quote.report_data);
        siphash24(&self.0, &msg) == quote.signature
    }
}

/// Runs the full attested key exchange between a client and an enclave:
/// both sides generate key pairs, the enclave's public key is bound into
/// its quote's report data, the client verifies the quote, and both
/// derive the same session key. Returns `(client_key, enclave_key)`.
///
/// # Errors
///
/// Returns `Err` if quote verification fails.
pub fn attested_key_exchange(
    platform: &PlatformKey,
    enclave_measurement: [u8; 32],
    expected_measurement: &[u8; 32],
    rng: &mut FieldRng,
) -> Result<([u8; 32], [u8; 32]), &'static str> {
    let client = KeyPair::generate(rng);
    let enclave = KeyPair::generate(rng);
    // Enclave binds its DH public key into the quote.
    let mut report = [0u8; 32];
    report[..8].copy_from_slice(&enclave.public().value().to_le_bytes());
    let quote = platform.quote(enclave_measurement, report);
    if !platform.verify(&quote, Some(expected_measurement)) {
        return Err("quote verification failed");
    }
    let quoted_pub = F61::new(u64::from_le_bytes(
        quote.report_data[..8].try_into().expect("8 bytes"),
    ));
    let client_key = client.session_key(quoted_pub, b"client-enclave");
    let enclave_key = enclave.session_key(client.public(), b"client-enclave");
    Ok((client_key, enclave_key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_agreement() {
        let mut rng = FieldRng::seed_from(1);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_eq!(
            a.session_key(b.public(), b"ctx"),
            b.session_key(a.public(), b"ctx")
        );
    }

    #[test]
    fn dh_context_separation() {
        let mut rng = FieldRng::seed_from(2);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_ne!(
            a.session_key(b.public(), b"ctx1"),
            a.session_key(b.public(), b"ctx2")
        );
    }

    #[test]
    fn quote_round_trip() {
        let pk = PlatformKey::from_seed(9);
        let m = Sha256::digest(b"enclave code");
        let q = pk.quote(m, [7u8; 32]);
        assert!(pk.verify(&q, Some(&m)));
        assert!(pk.verify(&q, None));
    }

    #[test]
    fn forged_signature_rejected() {
        let pk = PlatformKey::from_seed(9);
        let m = Sha256::digest(b"enclave code");
        let mut q = pk.quote(m, [7u8; 32]);
        q.signature ^= 1;
        assert!(!pk.verify(&q, Some(&m)));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let pk = PlatformKey::from_seed(9);
        let m1 = Sha256::digest(b"good code");
        let m2 = Sha256::digest(b"evil code");
        let q = pk.quote(m2, [0u8; 32]);
        // Signature is valid but measurement does not match expectation.
        assert!(pk.verify(&q, None));
        assert!(!pk.verify(&q, Some(&m1)));
    }

    #[test]
    fn wrong_platform_key_rejected() {
        let pk1 = PlatformKey::from_seed(1);
        let pk2 = PlatformKey::from_seed(2);
        let m = Sha256::digest(b"code");
        let q = pk1.quote(m, [0u8; 32]);
        assert!(!pk2.verify(&q, Some(&m)));
    }

    #[test]
    fn full_attested_exchange() {
        let mut rng = FieldRng::seed_from(5);
        let pk = PlatformKey::from_seed(11);
        let m = Sha256::digest(b"darknight enclave v1");
        let (ck, ek) = attested_key_exchange(&pk, m, &m, &mut rng).unwrap();
        assert_eq!(ck, ek);
    }

    #[test]
    fn exchange_rejects_wrong_code() {
        let mut rng = FieldRng::seed_from(6);
        let pk = PlatformKey::from_seed(11);
        let good = Sha256::digest(b"darknight enclave v1");
        let evil = Sha256::digest(b"backdoored enclave");
        assert!(attested_key_exchange(&pk, evil, &good, &mut rng).is_err());
    }
}
