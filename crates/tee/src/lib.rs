//! A software simulation of an SGX-style trusted execution environment.
//!
//! The paper runs DarKnight's encoder/decoder inside an Intel SGX enclave.
//! No SGX hardware exists in this environment, so this crate provides the
//! *algorithmic surface* of the enclave instead (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`enclave::Enclave`] — a protected-memory budget (the 128 MB EPC of
//!   the paper's hardware), allocation tracking and paging-event
//!   counters. DarKnight's virtual-batch sizing (`K = 4` optimum in
//!   Fig. 3/6b) is entirely a consequence of this budget, so the
//!   simulator enforces it for real.
//! * [`crypto`] — the primitives a real enclave gets from hardware or
//!   its SDK, implemented from scratch: SHA-256 (measurements), ChaCha20
//!   (sealing confidentiality), SipHash-2-4 (sealing integrity),
//!   and an encrypt-then-MAC [`crypto::SealKey`].
//! * [`attestation`] — simulated local/remote attestation: code
//!   measurement, quote generation/verification and a toy
//!   Diffie–Hellman key exchange for the TEE↔GPU secure channels.
//! * [`sealed_store`] — the untrusted memory region where Algorithm 2
//!   parks encrypted per-virtual-batch weight updates.
//! * [`channel`] — authenticated-encryption message channels between the
//!   enclave and GPU workers.
//!
//! # Security disclaimer
//!
//! These primitives are faithful implementations of the published
//! algorithms but exist to *simulate* a TEE for research reproduction.
//! Nothing here is hardened (no constant-time guarantees, no side-channel
//! defenses — which the paper also scopes out, §2.1).

pub mod attestation;
pub mod channel;
pub mod crypto;
pub mod enclave;
pub mod sealed_store;

pub use enclave::{Enclave, EnclaveError, EpcConfig, MemoryStats};
pub use sealed_store::UntrustedStore;
